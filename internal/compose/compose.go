// Package compose implements the paper's grammar-composition engine
// (Section 3.2 of "Generating Highly Customizable SQL Parsers").
//
// Sub-grammars — one per selected feature — are composed pairwise, in a
// composition sequence, into a single LL(k) grammar. Production rules
// labelled with the same nonterminal are merged under three rules:
//
//  1. If the new production CONTAINS the old one, the old production is
//     REPLACED: composing A: BC into A: B yields A: BC.
//  2. If the new production IS CONTAINED IN the old one, the old production
//     is RETAINED: composing A: B into A: BC yields A: BC.
//  3. If the new and old productions DIFFER, they are APPENDED as choices:
//     composing A: C into A: B yields A: B | C.
//
// Optional specifications must be composed after the corresponding
// non-optional specification (A: B before A: B [C]); a sublist must be
// composed ahead of the corresponding complex list (A: B before A: B [, B]).
// Token files compose by set union. Options on Composer control whether
// ordering violations are errors (the paper's behaviour) or tolerated.
package compose

import (
	"fmt"
	"strings"

	"sqlspl/internal/grammar"
)

// Options configures composition behaviour.
type Options struct {
	// StrictOrder enforces the paper's ordering constraints: an
	// optional-extended or complex-list production arriving before its base
	// is a composition error instead of being resolved by the containment
	// rules. The paper states such pairs "can be composed in that order
	// only".
	StrictOrder bool
	// Trace, if non-nil, receives one line per composition decision —
	// useful for the sqlfpc CLI's -trace flag and for debugging products.
	Trace func(format string, args ...any)
}

// Composer accumulates sub-grammars and token sets into one product grammar.
// The zero value is not usable; call New.
type Composer struct {
	opts    Options
	grammar *grammar.Grammar
	tokens  *grammar.TokenSet
	steps   []string // names of composed units, in order
}

// New returns a Composer that will produce a grammar and token set with the
// given product name.
func New(product string, opts Options) *Composer {
	return &Composer{
		opts:    opts,
		grammar: grammar.NewGrammar(product),
		tokens:  grammar.NewTokenSet(product),
	}
}

// Steps returns the names of the units composed so far, in order.
func (c *Composer) Steps() []string {
	out := make([]string, len(c.steps))
	copy(out, c.steps)
	return out
}

// Grammar returns the composed grammar. The first composed unit's start
// symbol becomes the product's start symbol.
func (c *Composer) Grammar() *grammar.Grammar { return c.grammar }

// Tokens returns the composed token set.
func (c *Composer) Tokens() *grammar.TokenSet { return c.tokens }

func (c *Composer) tracef(format string, args ...any) {
	if c.opts.Trace != nil {
		c.opts.Trace(format, args...)
	}
}

// Add composes one sub-grammar and its token set into the product.
// Either may be nil (a feature may contribute only syntax or only tokens).
func (c *Composer) Add(g *grammar.Grammar, ts *grammar.TokenSet) error {
	name := "(anonymous)"
	if g != nil && g.Name != "" {
		name = g.Name
	} else if ts != nil && ts.Name != "" {
		name = ts.Name
	}
	if g != nil {
		if err := c.addGrammar(g); err != nil {
			return fmt.Errorf("composing %s: %w", name, err)
		}
	}
	if ts != nil {
		if err := c.tokens.Merge(ts); err != nil {
			return fmt.Errorf("composing %s: %w", name, err)
		}
	}
	c.steps = append(c.steps, name)
	return nil
}

func (c *Composer) addGrammar(g *grammar.Grammar) error {
	for _, p := range g.Productions() {
		if err := c.composeProduction(p); err != nil {
			return err
		}
	}
	if c.grammar.Start == "" {
		c.grammar.Start = g.Start
	}
	return nil
}

// composeProduction merges one incoming production into the product under
// the paper's same-nonterminal rules, alternative by alternative.
func (c *Composer) composeProduction(newProd *grammar.Production) error {
	old := c.grammar.Production(newProd.Name)
	if old == nil {
		cp := &grammar.Production{Name: newProd.Name, Expr: newProd.Expr}
		c.tracef("new production %s", newProd.Name)
		return c.grammar.Add(cp)
	}
	alts := old.Alternatives()
	for _, newAlt := range newProd.Alternatives() {
		var err error
		alts, err = c.composeAlternative(newProd.Name, alts, newAlt)
		if err != nil {
			return err
		}
	}
	old.SetAlternatives(alts)
	return nil
}

// composeAlternative applies the replace / retain / append rules for one new
// alternative against the existing alternatives of the same nonterminal.
func (c *Composer) composeAlternative(name string, alts []grammar.Expr, newAlt grammar.Expr) ([]grammar.Expr, error) {
	// Rule 2 (retain): the new production is contained in an existing one.
	for _, oldAlt := range alts {
		if grammar.Equal(oldAlt, newAlt) {
			c.tracef("%s: identical alternative retained: %s", name, newAlt)
			return alts, nil
		}
		if grammar.Contains(oldAlt, newAlt) {
			if c.opts.StrictOrder && !grammar.Equal(oldAlt, newAlt) {
				if isOptionalExtension(oldAlt, newAlt) {
					return nil, &OrderError{
						Production: name,
						Base:       newAlt,
						Extended:   oldAlt,
					}
				}
			}
			c.tracef("%s: new alternative %s contained in existing %s; retained", name, newAlt, oldAlt)
			return alts, nil
		}
	}
	// Rule 1 (replace): the new production contains one or more existing ones.
	replaced := false
	out := alts[:0:0]
	for _, oldAlt := range alts {
		if grammar.Contains(newAlt, oldAlt) {
			if !replaced {
				out = append(out, newAlt)
				replaced = true
				c.tracef("%s: existing alternative %s replaced by %s", name, oldAlt, newAlt)
			} else {
				c.tracef("%s: existing alternative %s subsumed by %s", name, oldAlt, newAlt)
			}
			continue
		}
		out = append(out, oldAlt)
	}
	if replaced {
		return out, nil
	}
	// Rule 3 (append): the productions differ — append as a choice.
	c.tracef("%s: alternative appended as choice: %s", name, newAlt)
	return append(out, newAlt), nil
}

// isOptionalExtension reports whether extended is base with optional
// material added — the shape whose composition order the paper restricts
// ("A: B and A: B[C] or A: B and A: [C]B can be composed in that order
// only"). It holds when stripping all optional groups from extended yields
// a sequence equal to base.
func isOptionalExtension(extended, base grammar.Expr) bool {
	stripped := stripOptionals(extended)
	return grammar.Equal(stripped, base) && !grammar.Equal(extended, base)
}

// stripOptionals removes Opt and Star groups (both derive the empty string)
// from a sequence, returning the mandatory spine.
func stripOptionals(e grammar.Expr) grammar.Expr {
	switch x := e.(type) {
	case grammar.Seq:
		var items []grammar.Expr
		for _, it := range x.Items {
			switch it.(type) {
			case grammar.Opt, grammar.Star:
				continue
			default:
				items = append(items, stripOptionals(it))
			}
		}
		return grammar.SeqOf(items...)
	default:
		return e
	}
}

// OrderError reports a violation of the paper's composition-order
// constraint for optional specifications.
type OrderError struct {
	Production string
	Base       grammar.Expr // the non-optional specification that arrived late
	Extended   grammar.Expr // the optional-extended specification already composed
}

// Error implements error.
func (e *OrderError) Error() string {
	return fmt.Sprintf(
		"production %s: optional specification %q was composed before its base %q; "+
			"the base must be composed first (paper Section 3.2)",
		e.Production, e.Extended, e.Base)
}

// Unit pairs a sub-grammar with its token set — the artifact a single
// feature contributes. Units are what composition sequences order.
type Unit struct {
	// Name identifies the unit (normally the feature name).
	Name string
	// Grammar is the unit's sub-grammar; may be nil for token-only units.
	Grammar *grammar.Grammar
	// Tokens is the unit's token file; may be nil.
	Tokens *grammar.TokenSet
}

// Compose runs a full composition sequence and returns the product grammar
// and token set. It is the convenience entry point used by the core
// pipeline; use a Composer directly for step-by-step composition.
func Compose(product string, units []Unit, opts Options) (*grammar.Grammar, *grammar.TokenSet, error) {
	c := New(product, opts)
	for _, u := range units {
		if err := c.Add(u.Grammar, u.Tokens); err != nil {
			return nil, nil, err
		}
	}
	return c.Grammar(), c.Tokens(), nil
}

// Describe renders the composition steps as a human-readable sequence,
// e.g. "query_specification -> set_quantifier -> where_clause".
func Describe(steps []string) string {
	return strings.Join(steps, " -> ")
}

package compose

import (
	"strings"
	"testing"

	"sqlspl/internal/grammar"
)

func TestEraseOptionalSlot(t *testing.T) {
	g := g(t, `
grammar t ;
table_expression : from_clause ( where_clause )? ( group_by_clause )? ;
from_clause : FROM IDENTIFIER ;
where_clause : WHERE IDENTIFIER ;
`)
	erased := EraseUndefined(g)
	if len(erased) != 1 || !strings.Contains(erased[0], "group_by_clause") {
		t.Fatalf("erased = %v", erased)
	}
	want := grammar.SeqOf(
		grammar.NT{Name: "from_clause"},
		grammar.Opt{Body: grammar.NT{Name: "where_clause"}},
	)
	if !grammar.Equal(g.Production("table_expression").Expr, want) {
		t.Errorf("table_expression = %s", g.Production("table_expression").Expr)
	}
	if err := grammar.Validate(g, nil); err != nil {
		t.Errorf("erased grammar invalid: %v", err)
	}
}

func TestEraseStarSlot(t *testing.T) {
	g := g(t, `
grammar t ;
s : A ( tail )* ;
`)
	erased := EraseUndefined(g)
	if len(erased) != 1 {
		t.Fatalf("erased = %v", erased)
	}
	if !grammar.Equal(g.Production("s").Expr, grammar.Tok{Name: "A"}) {
		t.Errorf("s = %s", g.Production("s").Expr)
	}
}

func TestEraseKeepsMandatoryUndefined(t *testing.T) {
	g := g(t, `
grammar t ;
s : A missing B ;
`)
	erased := EraseUndefined(g)
	if len(erased) != 0 {
		t.Fatalf("mandatory reference erased: %v", erased)
	}
	if err := grammar.Validate(g, nil); err == nil {
		t.Error("mandatory undefined reference must remain a validation error")
	}
}

func TestEraseChoiceAlternative(t *testing.T) {
	g := g(t, `
grammar t ;
s : A | missing B | C ;
`)
	erased := EraseUndefined(g)
	if len(erased) != 1 {
		t.Fatalf("erased = %v", erased)
	}
	alts := g.Production("s").Alternatives()
	if len(alts) != 2 {
		t.Errorf("s = %s, want 2 alternatives", g.Production("s").Expr)
	}
}

func TestEraseChoiceAllDeadIsMandatoryError(t *testing.T) {
	g := g(t, `
grammar t ;
s : missing1 | missing2 ;
ok : A ;
`)
	_ = EraseUndefined(g)
	if err := grammar.Validate(g, nil); err == nil {
		t.Error("fully dead choice must remain invalid")
	}
}

func TestEraseNestedOptionalInsideDefinedSlot(t *testing.T) {
	g := g(t, `
grammar t ;
s : a ;
a : B ( c ( d )? )? ;
c : C ;
`)
	_ = EraseUndefined(g)
	want := grammar.SeqOf(
		grammar.Tok{Name: "B"},
		grammar.Opt{Body: grammar.NT{Name: "c"}},
	)
	if !grammar.Equal(g.Production("a").Expr, want) {
		t.Errorf("a = %s", g.Production("a").Expr)
	}
}

func TestEraseOptionalChoiceAlternativeKeepsEpsilon(t *testing.T) {
	g := g(t, `
grammar t ;
s : ( ( missing )? | A ) B ;
`)
	_ = EraseUndefined(g)
	if err := grammar.Validate(g, nil); err != nil {
		t.Fatalf("erased grammar invalid: %v", err)
	}
	// "B" alone must still be derivable: the erased optional alternative
	// degenerates to epsilon.
	an := grammar.Analyze(g)
	if !an.First["s"]["B"] {
		t.Errorf("FIRST(s) = %v, must contain B", an.First["s"])
	}
}

func TestEraseWholeProductionBecomesEpsilon(t *testing.T) {
	g := g(t, `
grammar t ;
s : ( missing )? ;
`)
	_ = EraseUndefined(g)
	seq, ok := g.Production("s").Expr.(grammar.Seq)
	if !ok || len(seq.Items) != 0 {
		t.Errorf("s = %s, want epsilon", g.Production("s").Expr)
	}
}

func TestEraseIdempotent(t *testing.T) {
	g1 := g(t, `
grammar t ;
s : A ( miss )? ( also_miss )* B ;
`)
	first := EraseUndefined(g1)
	second := EraseUndefined(g1)
	if len(first) != 2 || len(second) != 0 {
		t.Errorf("erase rounds: %v then %v", first, second)
	}
}

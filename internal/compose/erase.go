package compose

import (
	"fmt"
	"sort"

	"sqlspl/internal/grammar"
)

// EraseUndefined prunes optional slots that refer to undefined nonterminals
// from a composed grammar, in place, and returns a sorted description of
// what was erased.
//
// Sub-grammars are written with optional slots for *later* features — e.g.
// the table-expression base carries ( where_clause )? ( group_by_clause )?
// even though those productions arrive only when the corresponding features
// are selected. After composition, a slot whose nonterminal was never
// defined cannot ever match; erasing it yields a grammar that parses
// precisely the selected features (the paper's goal) while keeping
// sub-grammars pairwise composable without artificial requires-constraints.
//
// Only positions that may derive the empty string are erased: Opt and Star
// groups, and Choice alternatives. Erasure iterates to a fixed point: a
// production whose right-hand side cannot match anything (a *mandatory*
// reference to an undefined nonterminal) is itself dead — it is removed,
// and references to it are then erased or pruned in the next round. A
// mandatory reference that survives the fixed point is left intact so
// grammar.Validate reports it — that situation signals a missing
// requires-constraint in the feature model, not an optional slot.
//
// The start production is never removed; if it is dead, Validate reports
// its dangling references.
func EraseUndefined(g *grammar.Grammar) []string {
	erased := map[string]bool{}
	for {
		defined := map[string]bool{}
		for _, p := range g.Productions() {
			defined[p.Name] = true
		}
		var dead []string
		for _, p := range g.Productions() {
			expr, drop := eraseExpr(p.Expr, defined, p.Name, erased)
			if drop {
				switch p.Expr.(type) {
				case grammar.Opt, grammar.Star:
					// The whole right-hand side is an undefined optional
					// slot; keep an empty production (derives epsilon).
					erased[fmt.Sprintf("%s: %s", p.Name, p.Expr)] = true
					p.Expr = grammar.Seq{}
				default:
					// The production cannot match anything: it is dead.
					if expr != nil {
						p.Expr = expr
					}
					if p.Name != g.Start {
						dead = append(dead, p.Name)
					}
				}
				continue
			}
			p.Expr = expr
		}
		if len(dead) == 0 {
			break
		}
		for _, name := range dead {
			erased[fmt.Sprintf("%s: production removed (unsatisfiable)", name)] = true
			_ = g.Remove(name)
		}
	}
	out := make([]string, 0, len(erased))
	for e := range erased {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// eraseExpr rewrites e. The boolean result means "this expression cannot
// match anything because it mandatorily references an undefined nonterminal
// — drop it if the context is optional".
func eraseExpr(e grammar.Expr, defined map[string]bool, prod string, erased map[string]bool) (grammar.Expr, bool) {
	switch x := e.(type) {
	case grammar.Tok:
		return x, false
	case grammar.NT:
		return x, !defined[x.Name]
	case grammar.Seq:
		items := make([]grammar.Expr, 0, len(x.Items))
		bad := false
		for _, it := range x.Items {
			ne, drop := eraseExpr(it, defined, prod, erased)
			if drop {
				switch it.(type) {
				case grammar.Opt, grammar.Star:
					// An optional slot over undefined material: erase it.
					erased[fmt.Sprintf("%s: %s", prod, it)] = true
					continue
				default:
					bad = true
				}
			}
			if ne != nil {
				items = append(items, ne)
			}
		}
		return grammar.SeqOf(items...), bad
	case grammar.Choice:
		alts := make([]grammar.Expr, 0, len(x.Alts))
		for _, a := range x.Alts {
			na, drop := eraseExpr(a, defined, prod, erased)
			if drop {
				erased[fmt.Sprintf("%s: alternative %s", prod, a)] = true
				switch a.(type) {
				case grammar.Opt, grammar.Star:
					// The alternative could match empty; keep that ability.
					alts = append(alts, grammar.Seq{})
				}
				// Otherwise: alternatives that cannot match are pruned; if
				// every alternative dies the whole choice is undefined.
				continue
			}
			alts = append(alts, na)
		}
		if len(alts) == 0 {
			return x, true
		}
		return grammar.ChoiceOf(alts...), false
	case grammar.Opt:
		body, drop := eraseExpr(x.Body, defined, prod, erased)
		if drop {
			return nil, true // caller (Seq) erases; top-level handled there
		}
		return grammar.Opt{Body: body}, false
	case grammar.Star:
		body, drop := eraseExpr(x.Body, defined, prod, erased)
		if drop {
			return nil, true
		}
		return grammar.Star{Body: body}, false
	case grammar.Plus:
		body, drop := eraseExpr(x.Body, defined, prod, erased)
		if drop {
			// One-or-more of something undefined can never match: the
			// enclosing context decides (optional => erased, else invalid).
			return x, true
		}
		return grammar.Plus{Body: body}, false
	}
	return e, false
}

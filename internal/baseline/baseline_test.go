package baseline

import (
	"strings"
	"testing"

	"sqlspl/internal/ast"
	"sqlspl/internal/dialect"
)

func parse(t *testing.T, sql string) *ast.Script {
	t.Helper()
	p := MustNew()
	script, err := p.Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return script
}

func TestBaselineAcceptsFullSurface(t *testing.T) {
	queries := []string{
		"SELECT a FROM t",
		"SELECT DISTINCT a, b AS total FROM t WHERE a = 1 AND b < 2 OR NOT c = 3",
		"SELECT t.*, u.x FROM t LEFT OUTER JOIN u ON t.id = u.id",
		"SELECT a FROM t CROSS JOIN u NATURAL JOIN v",
		"SELECT a FROM t, u WHERE t.a = u.a",
		"SELECT COUNT(*), SUM(DISTINCT x) FILTER (WHERE y = 1) FROM t GROUP BY a HAVING COUNT(*) > 2",
		"SELECT a FROM t GROUP BY ROLLUP (a, b), CUBE (c), GROUPING SETS ((a), ())",
		"SELECT RANK() OVER (PARTITION BY a ORDER BY b DESC) FROM t",
		"SELECT SUM(x) OVER w FROM t WINDOW w AS (ORDER BY d ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)",
		"SELECT a FROM t UNION ALL SELECT b FROM u INTERSECT SELECT c FROM v",
		"WITH RECURSIVE r (n) AS (SELECT a FROM t) SELECT n FROM r ORDER BY n ASC NULLS FIRST",
		"SELECT a FROM (SELECT b FROM u) AS d (x) WHERE x IN (SELECT y FROM z)",
		"SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END, CASE WHEN b = 2 THEN 1 END FROM t",
		"SELECT CAST(a AS DECIMAL(10, 2)), CAST(NULL AS DATE) FROM t",
		"SELECT NULLIF(a, b), COALESCE(a, b, c), f(x, 1) FROM t",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 2 AND c NOT LIKE 'x%' ESCAPE '!'",
		"SELECT a FROM t WHERE b IS NOT NULL AND c IS DISTINCT FROM d",
		"SELECT a FROM t WHERE EXISTS (SELECT b FROM u) AND x > ALL (SELECT y FROM v)",
		"SELECT a FROM t WHERE (a, b) OVERLAPS (c, d)",
		"SELECT a FROM t WHERE a = 1 IS NOT TRUE",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (DEFAULT, NULL)",
		"INSERT INTO t SELECT a FROM u",
		"INSERT INTO t DEFAULT VALUES",
		"UPDATE t SET a = a + 1, b = DEFAULT WHERE c = 2",
		"UPDATE t SET a = 1 WHERE CURRENT OF cur",
		"DELETE FROM t WHERE a LIKE 'x%'",
		"VALUES (1, 2), (3, 4)",
		"TABLE t",
		"SELECT a FROM t; DELETE FROM t; COMMIT",
		"CREATE TABLE t ( a INTEGER NOT NULL, PRIMARY KEY (a) )",
		"GRANT SELECT ON t TO PUBLIC",
		"SELECT :param, ? FROM t WHERE x = DATE '2008-03-29'",
	}
	p := MustNew()
	for _, q := range queries {
		if _, err := p.Parse(q); err != nil {
			t.Errorf("baseline rejected %q: %v", q, err)
		}
	}
}

func TestBaselineRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"INSERT t VALUES (1)",
		"UPDATE SET a = 1",
		"FROM t SELECT a",
		"SELECT a FROM t )",
	}
	p := MustNew()
	for _, q := range bad {
		if p.Accepts(q) {
			t.Errorf("baseline accepted %q", q)
		}
	}
}

func TestBaselineASTShape(t *testing.T) {
	script := parse(t, "SELECT DISTINCT a, COUNT(*) c FROM t JOIN u ON t.id = u.id WHERE a + 1 = 2 GROUP BY a")
	sel := script.Statements[0].(*ast.Select)
	if sel.Quantifier != "DISTINCT" || len(sel.Items) != 2 {
		t.Errorf("select head = %+v", sel)
	}
	if sel.Items[1].Alias != "c" {
		t.Errorf("implicit alias = %q", sel.Items[1].Alias)
	}
	if len(sel.From) != 1 || len(sel.From[0].Joins) != 1 {
		t.Fatalf("from = %+v", sel.From)
	}
	cmp := sel.Where.(*ast.Binary)
	if cmp.Op != "=" {
		t.Errorf("where = %+v", cmp)
	}
	add := cmp.Left.(*ast.Binary)
	if add.Op != "+" {
		t.Errorf("lhs = %+v", add)
	}
}

func TestBaselineAlwaysReservesEverything(t *testing.T) {
	// The monolithic parser's inflexibility: CUBE is reserved even for
	// applications that never group, so it cannot be a column name.
	p := MustNew()
	if p.Accepts("SELECT cube FROM t") {
		t.Error("baseline unexpectedly allowed reserved word as identifier")
	}
	if len(p.Keywords()) < 100 {
		t.Errorf("baseline keyword count = %d, expected the full reserved set", len(p.Keywords()))
	}
}

// TestBaselineAgreesWithFullProduct: on a shared query corpus, the
// hand-written baseline and the composed full product accept the same
// queries — the generated parser is as capable as the conventional one.
func TestBaselineAgreesWithFullProduct(t *testing.T) {
	full, err := dialect.Build(dialect.Warehouse)
	if err != nil {
		t.Fatal(err)
	}
	p := MustNew()
	corpus := []string{
		"SELECT a FROM t",
		"SELECT DISTINCT a, b FROM t WHERE a = 1",
		"SELECT a FROM t LEFT JOIN u ON t.id = u.id",
		"SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
		"SELECT a FROM t UNION ALL SELECT b FROM u",
		"SELECT RANK() OVER (ORDER BY a) FROM t",
		"WITH r AS (SELECT a FROM t) SELECT a FROM r",
		"INSERT INTO t (a) VALUES (1)",
		"UPDATE t SET a = 2 WHERE b = 3",
		"DELETE FROM t WHERE a IN (1, 2)",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 2",
		"SELECT CASE WHEN a = 1 THEN 2 ELSE 3 END FROM t",
	}
	for _, q := range corpus {
		got := p.Accepts(q)
		want := full.Accepts(q)
		if got != want {
			t.Errorf("disagreement on %q: baseline=%v product=%v", q, got, want)
		}
		if !got {
			t.Errorf("corpus query rejected by both: %q", q)
		}
	}
}

func TestBaselineSQLRendering(t *testing.T) {
	// Baseline ASTs render to SQL that the baseline re-accepts.
	p := MustNew()
	for _, q := range []string{
		"SELECT a, b AS x FROM t WHERE a = 1",
		"INSERT INTO t (a) VALUES (1), (2)",
		"UPDATE t SET a = NULL WHERE b IS NOT NULL",
	} {
		script := parse(t, q)
		rendered := script.SQL()
		if !p.Accepts(rendered) {
			t.Errorf("rendered SQL rejected: %q -> %q", q, rendered)
		}
	}
}

func TestArithmeticAndPositionedForms(t *testing.T) {
	script := parse(t, "SELECT -a * +b / 2, a || b FROM t; DELETE FROM t WHERE CURRENT OF c")
	sel := script.Statements[0].(*ast.Select)
	mul := sel.Items[0].Expr.(*ast.Binary)
	if mul.Op != "/" {
		t.Errorf("top op = %q, want / (left associative)", mul.Op)
	}
	if u, ok := mul.Left.(*ast.Binary).Left.(*ast.Unary); !ok || u.Op != "-" {
		t.Errorf("unary minus missing: %#v", mul.Left)
	}
	if cc := sel.Items[1].Expr.(*ast.Binary); cc.Op != "||" {
		t.Errorf("concat op = %q", cc.Op)
	}
	del := script.Statements[1].(*ast.Delete)
	if del.Cursor != "c" {
		t.Errorf("positioned delete cursor = %q", del.Cursor)
	}
}

func TestBaselineErrorPaths(t *testing.T) {
	p := MustNew()
	bad := []string{
		"SELECT * FROM t WHERE a IS 5",           // IS needs NULL/truth/DISTINCT
		"SELECT a FROM t WHERE NOT",              // NOT needs a predicate
		"SELECT a FROM t WHERE b BETWEEN 1 OR 2", // BETWEEN needs AND
		"SELECT a FROM t ORDER BY a NULLS SOMETIMES",
		"DELETE t",                // missing FROM
		"UPDATE t SET a 1",        // missing =
		"SELECT CASE END FROM t",  // CASE without WHEN
		"SELECT a FROM t WHERE -", // dangling unary
	}
	for _, q := range bad {
		if p.Accepts(q) {
			t.Errorf("baseline accepted %q", q)
		}
	}
}

func TestGenericPreservesText(t *testing.T) {
	script := parse(t, "CREATE TABLE t ( a INTEGER ); SELECT a FROM t")
	g := script.Statements[0].(*ast.Generic)
	if g.Kind != "create" || !strings.Contains(g.Text, "CREATE TABLE") {
		t.Errorf("generic = %+v", g)
	}
	if len(script.Statements) != 2 {
		t.Errorf("statements = %d", len(script.Statements))
	}
}

// Package baseline is the comparator the paper argues against: a
// conventional, monolithic, hand-written recursive-descent parser for a
// fixed full-SQL surface. Every keyword is always reserved, every construct
// always parsed; nothing can be selected away for an embedded profile.
//
// The experiments (EXPERIMENTS.md, E8) compare composed product parsers
// against this baseline on dialect-appropriate workloads: same scanner
// machinery, same AST output, different parsing strategy (hand-coded
// single-token-lookahead descent versus the generated engine) and different
// customizability (none versus full).
package baseline

import (
	"fmt"
	"strings"

	"sqlspl/internal/ast"
	"sqlspl/internal/grammar"
	"sqlspl/internal/lexer"
)

// keywords reserved by the monolithic parser — the union a conventional
// full-SQL parser carries whether or not the application needs them.
var keywords = []string{
	"SELECT", "DISTINCT", "ALL", "FROM", "WHERE", "GROUP", "BY", "HAVING",
	"WINDOW", "ORDER", "ASC", "DESC", "NULLS", "FIRST", "LAST", "AS", "ON",
	"JOIN", "INNER", "OUTER", "LEFT", "RIGHT", "FULL", "CROSS", "NATURAL",
	"USING", "UNION", "EXCEPT", "INTERSECT", "CORRESPONDING", "WITH",
	"RECURSIVE", "VALUES", "TABLE", "ROLLUP", "CUBE", "GROUPING", "SETS",
	"AND", "OR", "NOT", "IS", "NULL", "TRUE", "FALSE", "UNKNOWN", "BETWEEN",
	"SYMMETRIC", "ASYMMETRIC", "IN", "LIKE", "SIMILAR", "TO", "ESCAPE",
	"EXISTS", "UNIQUE", "SOME", "ANY", "OVERLAPS", "CASE", "WHEN", "THEN",
	"ELSE", "END", "NULLIF", "COALESCE", "CAST", "ROW", "COUNT", "AVG",
	"MAX", "MIN", "SUM", "EVERY", "STDDEV_POP", "STDDEV_SAMP", "VAR_POP",
	"VAR_SAMP", "FILTER", "OVER", "PARTITION", "RANK", "DENSE_RANK",
	"PERCENT_RANK", "CUME_DIST", "ROW_NUMBER", "ROWS", "RANGE", "UNBOUNDED",
	"PRECEDING", "FOLLOWING", "CURRENT", "INSERT", "INTO", "UPDATE", "SET",
	"DELETE", "DEFAULT", "MERGE", "MATCHED", "CREATE", "DROP", "ALTER",
	"ADD", "COLUMN", "CONSTRAINT", "PRIMARY", "KEY", "FOREIGN", "REFERENCES",
	"CHECK", "CASCADE", "RESTRICT", "VIEW", "DOMAIN", "SEQUENCE", "TRIGGER",
	"SCHEMA", "GRANT", "REVOKE", "PRIVILEGES", "PUBLIC", "OPTION", "ROLE",
	"START", "TRANSACTION", "COMMIT", "ROLLBACK", "WORK", "CHAIN",
	"SAVEPOINT", "RELEASE", "ISOLATION", "LEVEL", "READ", "COMMITTED",
	"UNCOMMITTED", "REPEATABLE", "SERIALIZABLE", "ONLY", "WRITE", "DECLARE",
	"CURSOR", "OPEN", "CLOSE", "FETCH", "OF", "FOR", "INDICATOR",
	"INTEGER", "INT",
	"SMALLINT", "BIGINT", "NUMERIC", "DECIMAL", "DEC", "FLOAT", "REAL",
	"DOUBLE", "PRECISION", "CHAR", "CHARACTER", "VARCHAR", "VARYING",
	"BOOLEAN", "DATE", "TIME", "TIMESTAMP", "INTERVAL", "ZONE", "WITHOUT",
	"CHECK_OPTION",
}

var puncts = map[string]string{
	"LPAREN": "(", "RPAREN": ")", "COMMA": ",", "PERIOD": ".",
	"SEMICOLON": ";", "ASTERISK": "*", "PLUS": "+", "MINUS": "-",
	"SOLIDUS": "/", "CONCAT": "||", "EQ": "=", "NEQ": "<>", "LT": "<",
	"GT": ">", "LTEQ": "<=", "GTEQ": ">=", "QMARK_P": "?",
}

// Parser is the monolithic full-SQL parser. Construct with New; safe for
// concurrent use.
type Parser struct {
	lex *lexer.Lexer
}

// New builds the baseline parser and its fixed scanner configuration.
func New() (*Parser, error) {
	ts := grammar.NewTokenSet("baseline")
	for _, kw := range keywords {
		if err := ts.Add(grammar.TokenDef{Name: kw, Kind: grammar.Keyword, Text: kw}); err != nil {
			return nil, err
		}
	}
	for name, text := range puncts {
		if err := ts.Add(grammar.TokenDef{Name: name, Kind: grammar.Punct, Text: text}); err != nil {
			return nil, err
		}
	}
	for name, class := range map[string]string{
		"IDENTIFIER": lexer.ClassIdentifier,
		"DELIMITED":  lexer.ClassDelimitedIdentifier,
		"NUMBER":     lexer.ClassNumber,
		"INTEGER_L":  lexer.ClassInteger,
		"STRING":     lexer.ClassString,
		"BINSTRING":  lexer.ClassBinaryString,
		"HOSTPARAM":  lexer.ClassHostParameter,
	} {
		if err := ts.Add(grammar.TokenDef{Name: name, Kind: grammar.Class, Text: class}); err != nil {
			return nil, err
		}
	}
	lx, err := lexer.New(ts)
	if err != nil {
		return nil, err
	}
	return &Parser{lex: lx}, nil
}

// MustNew is New for mainlines and benchmarks.
func MustNew() *Parser {
	p, err := New()
	if err != nil {
		panic(err)
	}
	return p
}

// Keywords returns the reserved words of the baseline (all of them, always).
func (p *Parser) Keywords() []string { return p.lex.Keywords() }

// Puncts returns the punctuation spellings the baseline scanner recognizes.
func (p *Parser) Puncts() []string { return p.lex.Puncts() }

// Parse parses a script.
func (p *Parser) Parse(sql string) (*ast.Script, error) {
	toks, err := p.lex.Scan(sql)
	if err != nil {
		return nil, err
	}
	s := &state{toks: toks}
	if s.eof() {
		return nil, fmt.Errorf("baseline: empty input")
	}
	script := &ast.Script{}
	for !s.eof() {
		st, err := s.statement()
		if err != nil {
			return nil, err
		}
		script.Statements = append(script.Statements, st)
		if !s.accept("SEMICOLON") {
			break
		}
	}
	if !s.eof() {
		return nil, s.errf("trailing input")
	}
	return script, nil
}

// Accepts reports whether sql parses.
func (p *Parser) Accepts(sql string) bool {
	_, err := p.Parse(sql)
	return err == nil
}

// state is the per-parse cursor.
type state struct {
	toks []lexer.Token
	pos  int
}

func (s *state) eof() bool { return s.pos >= len(s.toks) }

func (s *state) peek() string {
	if s.eof() {
		return ""
	}
	return s.toks[s.pos].Name
}

func (s *state) peekAt(off int) string {
	if s.pos+off >= len(s.toks) {
		return ""
	}
	return s.toks[s.pos+off].Name
}

func (s *state) next() lexer.Token {
	t := s.toks[s.pos]
	s.pos++
	return t
}

func (s *state) at(names ...string) bool {
	got := s.peek()
	for _, n := range names {
		if got == n {
			return true
		}
	}
	return false
}

func (s *state) accept(name string) bool {
	if s.at(name) {
		s.pos++
		return true
	}
	return false
}

func (s *state) expect(name string) (lexer.Token, error) {
	if !s.at(name) {
		return lexer.Token{}, s.errf("expected %s", name)
	}
	return s.next(), nil
}

func (s *state) errf(format string, args ...any) error {
	loc := "end of input"
	if !s.eof() {
		t := s.toks[s.pos]
		loc = fmt.Sprintf("%d:%d near %s", t.Line, t.Col, t)
	}
	return fmt.Errorf("baseline: %s at %s", fmt.Sprintf(format, args...), loc)
}

// identifier parses a (possibly qualified) name.
func (s *state) identifier() (string, error) {
	if !s.at("IDENTIFIER", "DELIMITED") {
		return "", s.errf("expected identifier")
	}
	return strings.Trim(s.next().Text, `"`), nil
}

func (s *state) nameChain() ([]string, error) {
	first, err := s.identifier()
	if err != nil {
		return nil, err
	}
	parts := []string{first}
	for s.at("PERIOD") && s.peekAt(1) != "ASTERISK" {
		s.next()
		id, err := s.identifier()
		if err != nil {
			return nil, err
		}
		parts = append(parts, id)
	}
	return parts, nil
}

// --- Statements ----------------------------------------------------------------

func (s *state) statement() (ast.Statement, error) {
	switch s.peek() {
	case "SELECT", "WITH", "VALUES", "TABLE", "LPAREN":
		return s.queryStatement()
	case "INSERT":
		return s.insert()
	case "UPDATE":
		return s.update()
	case "DELETE":
		return s.delete()
	case "CREATE", "DROP", "ALTER", "GRANT", "REVOKE", "START", "COMMIT",
		"ROLLBACK", "SAVEPOINT", "RELEASE", "SET", "DECLARE", "OPEN",
		"CLOSE", "FETCH", "MERGE":
		return s.generic()
	}
	return nil, s.errf("expected statement")
}

// generic consumes a statement it does not model structurally up to the
// next top-level semicolon, preserving the text.
func (s *state) generic() (ast.Statement, error) {
	kind := strings.ToLower(s.peek())
	start := s.pos
	depth := 0
	for !s.eof() {
		switch s.peek() {
		case "LPAREN":
			depth++
		case "RPAREN":
			depth--
		case "SEMICOLON":
			if depth == 0 {
				goto done
			}
		}
		s.pos++
	}
done:
	if s.pos == start {
		return nil, s.errf("empty statement")
	}
	parts := make([]string, 0, s.pos-start)
	for _, t := range s.toks[start:s.pos] {
		parts = append(parts, t.Text)
	}
	return &ast.Generic{Kind: kind, Text: strings.Join(parts, " ")}, nil
}

func (s *state) queryStatement() (ast.Statement, error) {
	sel, err := s.queryExpression()
	if err != nil {
		return nil, err
	}
	if s.accept("ORDER") {
		if _, err := s.expect("BY"); err != nil {
			return nil, err
		}
		keys, err := s.sortList()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = keys
	}
	return sel, nil
}

func (s *state) queryExpression() (*ast.Select, error) {
	var withs []ast.With
	recursive := false
	if s.accept("WITH") {
		recursive = s.accept("RECURSIVE")
		for {
			name, err := s.identifier()
			if err != nil {
				return nil, err
			}
			w := ast.With{Name: name}
			if s.accept("LPAREN") {
				w.Columns, err = s.columnList()
				if err != nil {
					return nil, err
				}
				if _, err := s.expect("RPAREN"); err != nil {
					return nil, err
				}
			}
			if _, err := s.expect("AS"); err != nil {
				return nil, err
			}
			if _, err := s.expect("LPAREN"); err != nil {
				return nil, err
			}
			q, err := s.queryExpression()
			if err != nil {
				return nil, err
			}
			if _, err := s.expect("RPAREN"); err != nil {
				return nil, err
			}
			w.Query = q
			withs = append(withs, w)
			if !s.accept("COMMA") {
				break
			}
		}
	}
	sel, err := s.queryBody()
	if err != nil {
		return nil, err
	}
	sel.With = withs
	sel.Recursive = recursive
	return sel, nil
}

func (s *state) queryBody() (*ast.Select, error) {
	left, err := s.queryTerm()
	if err != nil {
		return nil, err
	}
	for s.at("UNION", "EXCEPT") {
		op := ast.SetOp{Op: s.next().Name}
		if s.at("ALL", "DISTINCT") {
			op.Quantifier = s.next().Name
		}
		if err := s.correspondingSpec(&op); err != nil {
			return nil, err
		}
		right, err := s.queryTerm()
		if err != nil {
			return nil, err
		}
		op.Right = right
		left.SetOps = append(left.SetOps, op)
	}
	return left, nil
}

func (s *state) queryTerm() (*ast.Select, error) {
	left, err := s.queryPrimary()
	if err != nil {
		return nil, err
	}
	for s.at("INTERSECT") {
		s.next()
		op := ast.SetOp{Op: "INTERSECT"}
		if s.at("ALL", "DISTINCT") {
			op.Quantifier = s.next().Name
		}
		if err := s.correspondingSpec(&op); err != nil {
			return nil, err
		}
		right, err := s.queryPrimary()
		if err != nil {
			return nil, err
		}
		op.Right = right
		left.SetOps = append(left.SetOps, op)
	}
	return left, nil
}

func (s *state) queryPrimary() (*ast.Select, error) {
	switch {
	case s.accept("LPAREN"):
		inner, err := s.queryBody()
		if err != nil {
			return nil, err
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		return &ast.Select{Paren: inner}, nil
	case s.at("VALUES"):
		s.next()
		sel := &ast.Select{}
		for {
			if _, err := s.expect("LPAREN"); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := s.valueExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !s.accept("COMMA") {
					break
				}
			}
			if _, err := s.expect("RPAREN"); err != nil {
				return nil, err
			}
			sel.Values = append(sel.Values, row)
			if !s.accept("COMMA") {
				break
			}
		}
		return sel, nil
	case s.at("TABLE"):
		s.next()
		name, err := s.nameChain()
		if err != nil {
			return nil, err
		}
		return &ast.Select{ExplicitTable: name}, nil
	}
	return s.selectSpec()
}

func (s *state) selectSpec() (*ast.Select, error) {
	if _, err := s.expect("SELECT"); err != nil {
		return nil, err
	}
	sel := &ast.Select{}
	if s.at("DISTINCT", "ALL") {
		sel.Quantifier = s.next().Name
	}
	for {
		item, err := s.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !s.accept("COMMA") {
			break
		}
	}
	if _, err := s.expect("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := s.tableReference()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if !s.accept("COMMA") {
			break
		}
	}
	if s.accept("WHERE") {
		cond, err := s.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = cond
	}
	if s.accept("GROUP") {
		if _, err := s.expect("BY"); err != nil {
			return nil, err
		}
		for {
			el, err := s.groupingElement()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, el)
			if !s.accept("COMMA") {
				break
			}
		}
	}
	if s.accept("HAVING") {
		cond, err := s.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = cond
	}
	if s.accept("WINDOW") {
		for {
			name, err := s.identifier()
			if err != nil {
				return nil, err
			}
			if _, err := s.expect("AS"); err != nil {
				return nil, err
			}
			spec, err := s.windowSpec()
			if err != nil {
				return nil, err
			}
			sel.Windows = append(sel.Windows, ast.WindowDef{Name: name, Spec: *spec})
			if !s.accept("COMMA") {
				break
			}
		}
	}
	return sel, nil
}

func (s *state) selectItem() (ast.SelectItem, error) {
	if s.accept("ASTERISK") {
		return ast.SelectItem{Star: true}, nil
	}
	// Qualified asterisk: name chain followed by .*
	if s.at("IDENTIFIER", "DELIMITED") {
		save := s.pos
		chain, err := s.nameChain()
		if err == nil && s.at("PERIOD") && s.peekAt(1) == "ASTERISK" {
			s.next()
			s.next()
			return ast.SelectItem{Star: true, Qualifier: chain}, nil
		}
		s.pos = save
	}
	e, err := s.valueExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if s.accept("AS") {
		item.Alias, err = s.identifier()
		if err != nil {
			return ast.SelectItem{}, err
		}
	} else if s.at("IDENTIFIER", "DELIMITED") {
		item.Alias, _ = s.identifier()
	}
	return item, nil
}

func (s *state) tableReference() (*ast.TableRef, error) {
	ref, err := s.tablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		j := ast.Join{Kind: ast.JoinInner}
		switch {
		case s.at("CROSS"):
			s.next()
			if _, err := s.expect("JOIN"); err != nil {
				return nil, err
			}
			j.Kind = ast.JoinCross
			right, err := s.tablePrimary()
			if err != nil {
				return nil, err
			}
			j.Right = right
			ref.Joins = append(ref.Joins, j)
			continue
		case s.at("NATURAL"):
			s.next()
			j.Natural = true
			fallthrough
		case s.at("JOIN", "INNER", "LEFT", "RIGHT", "FULL"):
			switch s.peek() {
			case "INNER":
				s.next()
			case "LEFT":
				s.next()
				j.Kind = ast.JoinLeft
				s.accept("OUTER")
			case "RIGHT":
				s.next()
				j.Kind = ast.JoinRight
				s.accept("OUTER")
			case "FULL":
				s.next()
				j.Kind = ast.JoinFull
				s.accept("OUTER")
			}
			if _, err := s.expect("JOIN"); err != nil {
				return nil, err
			}
			right, err := s.tablePrimary()
			if err != nil {
				return nil, err
			}
			j.Right = right
			if s.accept("ON") {
				cond, err := s.orExpr()
				if err != nil {
					return nil, err
				}
				j.On = cond
			} else if s.accept("USING") {
				if _, err := s.expect("LPAREN"); err != nil {
					return nil, err
				}
				j.Using, err = s.columnList()
				if err != nil {
					return nil, err
				}
				if _, err := s.expect("RPAREN"); err != nil {
					return nil, err
				}
			}
			ref.Joins = append(ref.Joins, j)
			continue
		}
		return ref, nil
	}
}

func (s *state) tablePrimary() (*ast.TableRef, error) {
	ref := &ast.TableRef{}
	switch {
	case s.at("LPAREN") && (s.peekAt(1) == "SELECT" || s.peekAt(1) == "WITH" || s.peekAt(1) == "VALUES"):
		s.next()
		q, err := s.queryExpression()
		if err != nil {
			return nil, err
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		ref.Subquery = q
	case s.accept("LPAREN"):
		inner, err := s.tableReference()
		if err != nil {
			return nil, err
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		ref.Paren = inner
	default:
		name, err := s.nameChain()
		if err != nil {
			return nil, err
		}
		ref.Name = name
	}
	if s.accept("AS") {
		alias, err := s.identifier()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if s.at("IDENTIFIER", "DELIMITED") {
		ref.Alias, _ = s.identifier()
	}
	if ref.Alias != "" && s.accept("LPAREN") {
		cols, err := s.columnList()
		if err != nil {
			return nil, err
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		ref.AliasColumns = cols
	}
	return ref, nil
}

// correspondingSpec parses an optional CORRESPONDING [ BY ( columns ) ]
// between a set operator and its right operand.
func (s *state) correspondingSpec(op *ast.SetOp) error {
	if !s.accept("CORRESPONDING") {
		return nil
	}
	op.Corresponding = true
	if s.accept("BY") {
		if _, err := s.expect("LPAREN"); err != nil {
			return err
		}
		cols, err := s.columnList()
		if err != nil {
			return err
		}
		op.CorrespondingBy = cols
		if _, err := s.expect("RPAREN"); err != nil {
			return err
		}
	}
	return nil
}

func (s *state) columnList() ([]string, error) {
	var out []string
	for {
		id, err := s.identifier()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !s.accept("COMMA") {
			break
		}
	}
	return out, nil
}

func (s *state) groupingElement() (ast.GroupingElement, error) {
	switch {
	case s.at("ROLLUP", "CUBE"):
		kind := s.next().Name
		if _, err := s.expect("LPAREN"); err != nil {
			return ast.GroupingElement{}, err
		}
		var cols []ast.Expr
		for {
			// Each element is an <ordinary grouping set>: a column
			// reference or a parenthesized column-reference list
			// (SQL:2003 §7.9) — ROLLUP ( (a, b), c ) groups pairwise.
			if s.accept("LPAREN") {
				for {
					chain, err := s.nameChain()
					if err != nil {
						return ast.GroupingElement{}, err
					}
					cols = append(cols, &ast.ColumnRef{Parts: chain})
					if !s.accept("COMMA") {
						break
					}
				}
				if _, err := s.expect("RPAREN"); err != nil {
					return ast.GroupingElement{}, err
				}
			} else {
				chain, err := s.nameChain()
				if err != nil {
					return ast.GroupingElement{}, err
				}
				cols = append(cols, &ast.ColumnRef{Parts: chain})
			}
			if !s.accept("COMMA") {
				break
			}
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return ast.GroupingElement{}, err
		}
		return ast.GroupingElement{Kind: kind, Columns: cols}, nil
	case s.at("GROUPING"):
		s.next()
		if _, err := s.expect("SETS"); err != nil {
			return ast.GroupingElement{}, err
		}
		if _, err := s.expect("LPAREN"); err != nil {
			return ast.GroupingElement{}, err
		}
		var nested []ast.GroupingElement
		for {
			el, err := s.groupingElement()
			if err != nil {
				return ast.GroupingElement{}, err
			}
			nested = append(nested, el)
			if !s.accept("COMMA") {
				break
			}
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return ast.GroupingElement{}, err
		}
		return ast.GroupingElement{Kind: "GROUPING SETS", Nested: nested}, nil
	case s.at("LPAREN"):
		s.next()
		if s.accept("RPAREN") {
			return ast.GroupingElement{Kind: "()"}, nil
		}
		var cols []ast.Expr
		for {
			chain, err := s.nameChain()
			if err != nil {
				return ast.GroupingElement{}, err
			}
			cols = append(cols, &ast.ColumnRef{Parts: chain})
			if !s.accept("COMMA") {
				break
			}
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return ast.GroupingElement{}, err
		}
		return ast.GroupingElement{Columns: cols}, nil
	default:
		chain, err := s.nameChain()
		if err != nil {
			return ast.GroupingElement{}, err
		}
		return ast.GroupingElement{Columns: []ast.Expr{&ast.ColumnRef{Parts: chain}}}, nil
	}
}

func (s *state) sortList() ([]ast.SortItem, error) {
	var out []ast.SortItem
	for {
		e, err := s.valueExpr()
		if err != nil {
			return nil, err
		}
		item := ast.SortItem{Key: e}
		if s.at("ASC", "DESC") {
			item.Direction = s.next().Name
		}
		if s.accept("NULLS") {
			if !s.at("FIRST", "LAST") {
				return nil, s.errf("expected FIRST or LAST")
			}
			item.Nulls = s.next().Name
		}
		out = append(out, item)
		if !s.accept("COMMA") {
			break
		}
	}
	return out, nil
}

func (s *state) windowSpec() (*ast.WindowSpec, error) {
	if _, err := s.expect("LPAREN"); err != nil {
		return nil, err
	}
	spec := &ast.WindowSpec{}
	if s.accept("PARTITION") {
		if _, err := s.expect("BY"); err != nil {
			return nil, err
		}
		for {
			chain, err := s.nameChain()
			if err != nil {
				return nil, err
			}
			spec.PartitionBy = append(spec.PartitionBy, &ast.ColumnRef{Parts: chain})
			if !s.accept("COMMA") {
				break
			}
		}
	}
	if s.accept("ORDER") {
		if _, err := s.expect("BY"); err != nil {
			return nil, err
		}
		keys, err := s.sortList()
		if err != nil {
			return nil, err
		}
		spec.OrderBy = keys
	}
	if s.at("ROWS", "RANGE") {
		start := s.pos
		s.next()
		depth := 0
		for !s.eof() && !(depth == 0 && s.at("RPAREN")) {
			if s.at("LPAREN") {
				depth++
			}
			if s.at("RPAREN") {
				depth--
			}
			s.pos++
		}
		parts := make([]string, 0, s.pos-start)
		for _, t := range s.toks[start:s.pos] {
			parts = append(parts, t.Text)
		}
		spec.Frame = strings.Join(parts, " ")
	}
	if _, err := s.expect("RPAREN"); err != nil {
		return nil, err
	}
	return spec, nil
}

// --- DML -------------------------------------------------------------------------

func (s *state) insert() (ast.Statement, error) {
	s.next() // INSERT
	if _, err := s.expect("INTO"); err != nil {
		return nil, err
	}
	table, err := s.nameChain()
	if err != nil {
		return nil, err
	}
	ins := &ast.Insert{Table: table}
	if s.accept("LPAREN") {
		ins.Columns, err = s.columnList()
		if err != nil {
			return nil, err
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
	}
	switch {
	case s.accept("DEFAULT"):
		if _, err := s.expect("VALUES"); err != nil {
			return nil, err
		}
		ins.DefaultValues = true
	case s.accept("VALUES"):
		for {
			if _, err := s.expect("LPAREN"); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				switch {
				case s.accept("NULL"):
					row = append(row, &ast.Literal{Kind: ast.LitNull, Text: "NULL"})
				case s.accept("DEFAULT"):
					row = append(row, &ast.Raw{Kind: "default", Text: "DEFAULT"})
				default:
					e, err := s.valueExpr()
					if err != nil {
						return nil, err
					}
					row = append(row, e)
				}
				if !s.accept("COMMA") {
					break
				}
			}
			if _, err := s.expect("RPAREN"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !s.accept("COMMA") {
				break
			}
		}
	default:
		q, err := s.queryExpression()
		if err != nil {
			return nil, err
		}
		ins.Query = q
	}
	return ins, nil
}

func (s *state) update() (ast.Statement, error) {
	s.next() // UPDATE
	table, err := s.nameChain()
	if err != nil {
		return nil, err
	}
	up := &ast.Update{Table: table}
	if _, err := s.expect("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := s.identifier()
		if err != nil {
			return nil, err
		}
		if _, err := s.expect("EQ"); err != nil {
			return nil, err
		}
		a := ast.Assignment{Column: col}
		switch {
		case s.accept("NULL"):
			a.Null = true
		case s.accept("DEFAULT"):
			a.Default = true
		default:
			a.Value, err = s.valueExpr()
			if err != nil {
				return nil, err
			}
		}
		up.Assignments = append(up.Assignments, a)
		if !s.accept("COMMA") {
			break
		}
	}
	if s.accept("WHERE") {
		if s.accept("CURRENT") {
			if _, err := s.expect("OF"); err != nil {
				return nil, err
			}
			up.Cursor, err = s.identifier()
			if err != nil {
				return nil, err
			}
		} else {
			up.Where, err = s.orExpr()
			if err != nil {
				return nil, err
			}
		}
	}
	return up, nil
}

func (s *state) delete() (ast.Statement, error) {
	s.next() // DELETE
	if _, err := s.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := s.nameChain()
	if err != nil {
		return nil, err
	}
	del := &ast.Delete{Table: table}
	if s.accept("WHERE") {
		if s.accept("CURRENT") {
			if _, err := s.expect("OF"); err != nil {
				return nil, err
			}
			del.Cursor, err = s.identifier()
			if err != nil {
				return nil, err
			}
		} else {
			del.Where, err = s.orExpr()
			if err != nil {
				return nil, err
			}
		}
	}
	return del, nil
}

package baseline

import (
	"strings"

	"sqlspl/internal/ast"
)

// Expression parsing: classic precedence-layered recursive descent.
// orExpr > andExpr > notExpr > predicate > comparison > additive >
// multiplicative > unary > primary.

func (s *state) orExpr() (ast.Expr, error) {
	left, err := s.andExpr()
	if err != nil {
		return nil, err
	}
	for s.accept("OR") {
		right, err := s.andExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (s *state) andExpr() (ast.Expr, error) {
	left, err := s.notExpr()
	if err != nil {
		return nil, err
	}
	for s.accept("AND") {
		right, err := s.notExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (s *state) notExpr() (ast.Expr, error) {
	if s.accept("NOT") {
		inner, err := s.notExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "NOT", Operand: inner}, nil
	}
	return s.predicate()
}

var compOps = map[string]string{
	"EQ": "=", "NEQ": "<>", "LT": "<", "GT": ">", "LTEQ": "<=", "GTEQ": ">=",
}

func (s *state) predicate() (ast.Expr, error) {
	if s.at("EXISTS", "UNIQUE") {
		kind := s.next().Name
		sub, err := s.subquery()
		if err != nil {
			return nil, err
		}
		return &ast.Predicate{Kind: kind, Args: []ast.Expr{sub}}, nil
	}
	left, err := s.additive()
	if err != nil {
		return nil, err
	}
	not := s.accept("NOT")
	switch {
	case s.at("EQ", "NEQ", "LT", "GT", "LTEQ", "GTEQ") && !not:
		op := compOps[s.next().Name]
		if s.at("ALL", "SOME", "ANY") {
			q := s.next().Name
			sub, err := s.subquery()
			if err != nil {
				return nil, err
			}
			return &ast.Predicate{Kind: op + " " + q, Left: left, Args: []ast.Expr{sub}}, nil
		}
		right, err := s.additive()
		if err != nil {
			return nil, err
		}
		result := ast.Expr(&ast.Binary{Op: op, Left: left, Right: right})
		return s.truthTail(result)

	case s.accept("IS"):
		isNot := s.accept("NOT")
		switch {
		case s.accept("NULL"):
			return &ast.Predicate{Kind: "NULL", Not: isNot, Left: left}, nil
		case s.at("TRUE", "FALSE", "UNKNOWN"):
			return &ast.TruthTest{Operand: left, Not: isNot, Value: s.next().Name}, nil
		case !isNot && s.accept("DISTINCT"):
			if _, err := s.expect("FROM"); err != nil {
				return nil, err
			}
			right, err := s.additive()
			if err != nil {
				return nil, err
			}
			return &ast.Predicate{Kind: "DISTINCT", Left: left, Args: []ast.Expr{right}}, nil
		}
		return nil, s.errf("expected NULL, truth value or DISTINCT FROM after IS")

	case s.accept("BETWEEN"):
		if s.at("SYMMETRIC", "ASYMMETRIC") {
			s.next()
		}
		lo, err := s.additive()
		if err != nil {
			return nil, err
		}
		if _, err := s.expect("AND"); err != nil {
			return nil, err
		}
		hi, err := s.additive()
		if err != nil {
			return nil, err
		}
		return &ast.Predicate{Kind: "BETWEEN", Not: not, Left: left, Args: []ast.Expr{lo, hi}}, nil

	case s.accept("IN"):
		p := &ast.Predicate{Kind: "IN", Not: not, Left: left}
		if s.at("LPAREN") && (s.peekAt(1) == "SELECT" || s.peekAt(1) == "WITH") {
			sub, err := s.subquery()
			if err != nil {
				return nil, err
			}
			p.Args = []ast.Expr{sub}
			return p, nil
		}
		if _, err := s.expect("LPAREN"); err != nil {
			return nil, err
		}
		for {
			e, err := s.valueExpr()
			if err != nil {
				return nil, err
			}
			p.Args = append(p.Args, e)
			if !s.accept("COMMA") {
				break
			}
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		return p, nil

	case s.accept("LIKE"):
		return s.patternTail("LIKE", not, left)

	case s.accept("SIMILAR"):
		if _, err := s.expect("TO"); err != nil {
			return nil, err
		}
		return s.patternTail("SIMILAR", not, left)

	case s.accept("OVERLAPS"):
		right, err := s.additive()
		if err != nil {
			return nil, err
		}
		return &ast.Predicate{Kind: "OVERLAPS", Left: left, Args: []ast.Expr{right}}, nil
	}
	if not {
		return nil, s.errf("expected predicate after NOT")
	}
	return left, nil
}

// truthTail parses the optional IS [NOT] truth-value suffix of a boolean test.
func (s *state) truthTail(e ast.Expr) (ast.Expr, error) {
	if !s.accept("IS") {
		return e, nil
	}
	isNot := s.accept("NOT")
	if !s.at("TRUE", "FALSE", "UNKNOWN") {
		return nil, s.errf("expected truth value")
	}
	return &ast.TruthTest{Operand: e, Not: isNot, Value: s.next().Name}, nil
}

func (s *state) patternTail(kind string, not bool, left ast.Expr) (ast.Expr, error) {
	pat, err := s.additive()
	if err != nil {
		return nil, err
	}
	p := &ast.Predicate{Kind: kind, Not: not, Left: left, Args: []ast.Expr{pat}}
	if s.accept("ESCAPE") {
		esc, err := s.additive()
		if err != nil {
			return nil, err
		}
		p.Args = append(p.Args, esc)
	}
	return p, nil
}

func (s *state) additive() (ast.Expr, error) {
	left, err := s.multiplicative()
	if err != nil {
		return nil, err
	}
	for s.at("PLUS", "MINUS", "CONCAT") {
		op := s.next().Text
		right, err := s.multiplicative()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (s *state) multiplicative() (ast.Expr, error) {
	left, err := s.unary()
	if err != nil {
		return nil, err
	}
	for s.at("ASTERISK", "SOLIDUS") {
		op := s.next().Text
		right, err := s.unary()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (s *state) unary() (ast.Expr, error) {
	if s.at("PLUS", "MINUS") {
		op := s.next().Text
		inner, err := s.unary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: op, Operand: inner}, nil
	}
	return s.primary()
}

// valueExpr is the entry point for scalar expressions in clause positions.
func (s *state) valueExpr() (ast.Expr, error) { return s.additive() }

var aggregates = map[string]bool{
	"COUNT": true, "AVG": true, "MAX": true, "MIN": true, "SUM": true,
	"EVERY": true, "STDDEV_POP": true, "STDDEV_SAMP": true,
	"VAR_POP": true, "VAR_SAMP": true,
}

var rankFunctions = map[string]bool{
	"RANK": true, "DENSE_RANK": true, "PERCENT_RANK": true,
	"CUME_DIST": true, "ROW_NUMBER": true,
}

func (s *state) primary() (ast.Expr, error) {
	switch {
	case s.at("INTEGER_L", "NUMBER"):
		return &ast.Literal{Kind: ast.LitNumber, Text: s.next().Text}, nil
	case s.at("STRING"):
		return &ast.Literal{Kind: ast.LitString, Text: s.next().Text}, nil
	case s.at("BINSTRING"):
		return &ast.Literal{Kind: ast.LitBinary, Text: s.next().Text}, nil
	case s.at("HOSTPARAM"):
		// <host parameter specification> ::= :name [ [ INDICATOR ] :ind ]
		text := s.next().Text
		if s.at("INDICATOR") {
			text += " " + s.next().Name
			ind, err := s.expect("HOSTPARAM")
			if err != nil {
				return nil, err
			}
			text += " " + ind.Text
		} else if s.at("HOSTPARAM") {
			text += " " + s.next().Text
		}
		return &ast.Literal{Kind: ast.LitParameter, Text: text}, nil
	case s.at("QMARK_P"):
		s.next()
		return &ast.Literal{Kind: ast.LitParameter, Text: "?"}, nil
	case s.at("TRUE", "FALSE", "UNKNOWN"):
		return &ast.Literal{Kind: ast.LitBoolean, Text: s.next().Name}, nil
	case s.at("NULL"):
		s.next()
		return &ast.Literal{Kind: ast.LitNull, Text: "NULL"}, nil
	case s.at("DATE", "TIME", "TIMESTAMP") && s.peekAt(1) == "STRING":
		kw := s.next().Name
		lit := s.next().Text
		return &ast.Literal{Kind: ast.LitDatetime, Text: kw + " " + lit}, nil

	case s.at("CASE"):
		return s.caseExpr()
	case s.at("CAST"):
		return s.castExpr()
	case s.at("NULLIF", "COALESCE"):
		name := s.next().Name
		f := &ast.FuncCall{Name: []string{name}}
		if _, err := s.expect("LPAREN"); err != nil {
			return nil, err
		}
		for {
			e, err := s.valueExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if !s.accept("COMMA") {
				break
			}
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		return f, nil

	case s.at("ROW"):
		s.next()
		if _, err := s.expect("LPAREN"); err != nil {
			return nil, err
		}
		r := &ast.Row{Explicit: true}
		for {
			e, err := s.valueExpr()
			if err != nil {
				return nil, err
			}
			r.Items = append(r.Items, e)
			if !s.accept("COMMA") {
				break
			}
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		return r, nil

	case aggregates[s.peek()]:
		return s.aggregate()

	case rankFunctions[s.peek()]:
		name := s.next().Name
		if _, err := s.expect("LPAREN"); err != nil {
			return nil, err
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		f := &ast.FuncCall{Name: []string{name}}
		if err := s.overTail(f); err != nil {
			return nil, err
		}
		return f, nil

	case s.at("LPAREN") && (s.peekAt(1) == "SELECT" || s.peekAt(1) == "WITH"):
		return s.subquery()

	case s.accept("LPAREN"):
		first, err := s.orExpr()
		if err != nil {
			return nil, err
		}
		if s.at("COMMA") { // row value constructor
			r := &ast.Row{Items: []ast.Expr{first}}
			for s.accept("COMMA") {
				e, err := s.valueExpr()
				if err != nil {
					return nil, err
				}
				r.Items = append(r.Items, e)
			}
			if _, err := s.expect("RPAREN"); err != nil {
				return nil, err
			}
			return r, nil
		}
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
		return first, nil

	case s.at("IDENTIFIER", "DELIMITED"):
		chain, err := s.nameChain()
		if err != nil {
			return nil, err
		}
		if s.accept("LPAREN") { // routine invocation
			f := &ast.FuncCall{Name: chain}
			if !s.at("RPAREN") {
				for {
					e, err := s.valueExpr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, e)
					if !s.accept("COMMA") {
						break
					}
				}
			}
			if _, err := s.expect("RPAREN"); err != nil {
				return nil, err
			}
			return f, nil
		}
		return &ast.ColumnRef{Parts: chain}, nil
	}
	return nil, s.errf("expected expression")
}

func (s *state) aggregate() (ast.Expr, error) {
	name := s.next().Name
	f := &ast.FuncCall{Name: []string{name}}
	if _, err := s.expect("LPAREN"); err != nil {
		return nil, err
	}
	if name == "COUNT" && s.accept("ASTERISK") {
		f.Star = true
	} else {
		if s.at("DISTINCT", "ALL") {
			f.Quantifier = s.next().Name
		}
		e, err := s.valueExpr()
		if err != nil {
			return nil, err
		}
		f.Args = []ast.Expr{e}
	}
	if _, err := s.expect("RPAREN"); err != nil {
		return nil, err
	}
	if s.accept("FILTER") {
		if _, err := s.expect("LPAREN"); err != nil {
			return nil, err
		}
		if _, err := s.expect("WHERE"); err != nil {
			return nil, err
		}
		cond, err := s.orExpr()
		if err != nil {
			return nil, err
		}
		f.Filter = cond
		if _, err := s.expect("RPAREN"); err != nil {
			return nil, err
		}
	}
	if err := s.overTail(f); err != nil {
		return nil, err
	}
	return f, nil
}

// overTail parses an optional OVER window reference.
func (s *state) overTail(f *ast.FuncCall) error {
	if !s.accept("OVER") {
		return nil
	}
	if s.at("IDENTIFIER", "DELIMITED") {
		name, err := s.identifier()
		if err != nil {
			return err
		}
		f.OverName = name
		return nil
	}
	spec, err := s.windowSpec()
	if err != nil {
		return err
	}
	f.OverSpec = spec
	return nil
}

func (s *state) caseExpr() (ast.Expr, error) {
	s.next() // CASE
	c := &ast.Case{}
	if !s.at("WHEN") {
		op, err := s.valueExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for s.accept("WHEN") {
		var when ast.Expr
		var err error
		if c.Operand != nil {
			when, err = s.valueExpr()
		} else {
			when, err = s.orExpr()
		}
		if err != nil {
			return nil, err
		}
		if _, err := s.expect("THEN"); err != nil {
			return nil, err
		}
		then, err := s.valueExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.CaseWhen{When: when, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, s.errf("CASE without WHEN")
	}
	if s.accept("ELSE") {
		e, err := s.valueExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := s.expect("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (s *state) castExpr() (ast.Expr, error) {
	s.next() // CAST
	if _, err := s.expect("LPAREN"); err != nil {
		return nil, err
	}
	c := &ast.Cast{}
	if !s.accept("NULL") {
		e, err := s.valueExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = e
	}
	if _, err := s.expect("AS"); err != nil {
		return nil, err
	}
	// Consume the type tokens up to the closing parenthesis, tracking
	// nesting for parameterized types.
	start := s.pos
	depth := 0
	for !s.eof() && !(depth == 0 && s.at("RPAREN")) {
		if s.at("LPAREN") {
			depth++
		}
		if s.at("RPAREN") {
			depth--
		}
		s.pos++
	}
	parts := make([]string, 0, s.pos-start)
	for _, t := range s.toks[start:s.pos] {
		parts = append(parts, t.Text)
	}
	c.Type = strings.Join(parts, " ")
	if _, err := s.expect("RPAREN"); err != nil {
		return nil, err
	}
	return c, nil
}

func (s *state) subquery() (ast.Expr, error) {
	if _, err := s.expect("LPAREN"); err != nil {
		return nil, err
	}
	q, err := s.queryExpression()
	if err != nil {
		return nil, err
	}
	if _, err := s.expect("RPAREN"); err != nil {
		return nil, err
	}
	return &ast.Subquery{Query: q}, nil
}

// Command sqlparse parses SQL under a chosen product-line dialect and
// prints the parse tree, the typed AST, or re-rendered SQL. Products are
// resolved through the shared product catalog (internal/product), so the
// dialect's parser is composed once per process no matter how often it is
// used.
//
// Usage:
//
//	sqlparse -dialect core 'SELECT a FROM t WHERE b = 1'
//	echo 'SELECT * FROM sensors SAMPLE PERIOD 1024' | sqlparse -dialect tinysql -tree
//	sqlparse -dialect warehouse -render 'select a from t union select b from u'
//
// Batch mode is the serving path: one cached product, many queries, many
// goroutines. It reads one query per line from stdin, parses them over the
// shared parser, and reports per-query verdicts in input order plus a
// summary:
//
//	sqlparse -dialect core -batch -workers 8 < queries.sql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"sqlspl/internal/ast"
	"sqlspl/internal/core"
	"sqlspl/internal/dialect"
)

func main() {
	var (
		dialectN = flag.String("dialect", "core", "dialect: minimal|tinysql|scql|core|warehouse|full")
		tree     = flag.Bool("tree", false, "print the concrete parse tree")
		render   = flag.Bool("render", false, "print the SQL re-rendered from the typed AST")
		batch    = flag.Bool("batch", false, "batch mode: parse one query per stdin line over one shared product")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parse goroutines in batch mode")
	)
	flag.Parse()

	product, err := dialect.Build(dialect.Name(*dialectN))
	if err != nil {
		fatal(err)
	}

	if *batch {
		if err := runBatch(product, os.Stdin, os.Stdout, *workers); err != nil {
			fatal(err)
		}
		return
	}

	sql := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(sql) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sql = string(data)
	}
	if strings.TrimSpace(sql) == "" {
		fatal(fmt.Errorf("no SQL given (argument or stdin)"))
	}

	parseTree, err := product.Parse(sql)
	if err != nil {
		fatal(err)
	}
	if *tree {
		fmt.Print(parseTree.Dump())
		return
	}
	script, err := ast.NewBuilder(nil).Build(parseTree)
	if err != nil {
		fatal(err)
	}
	if *render {
		fmt.Println(script.SQL())
		return
	}
	for i, st := range script.Statements {
		fmt.Printf("-- statement %d: %T\n%s\n", i+1, st, st.SQL())
	}
}

// runBatch parses every non-blank line of in over the shared product with
// the given number of goroutines — the catalog's serving path: the product
// was built (or cache-hit) once, and its Parser is safe for concurrent use.
// Verdicts print in input order regardless of completion order.
func runBatch(product *core.Product, in io.Reader, out io.Writer, workers int) error {
	if workers < 1 {
		workers = 1
	}
	var queries []string
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if q := strings.TrimSpace(scanner.Text()); q != "" {
			queries = append(queries, q)
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if len(queries) == 0 {
		return fmt.Errorf("batch mode: no queries on stdin")
	}

	verdicts := make([]string, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if _, err := product.Parse(queries[i]); err != nil {
					verdicts[i] = fmt.Sprintf("REJECT %v", err)
				} else {
					verdicts[i] = "ACCEPT"
				}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	accepted := 0
	for i, v := range verdicts {
		fmt.Fprintf(out, "%d: %s\n", i+1, v)
		if v == "ACCEPT" {
			accepted++
		}
	}
	fmt.Fprintf(out, "-- %d queries: %d accepted, %d rejected (dialect %s, %d workers, %s, %.0f q/s)\n",
		len(queries), accepted, len(queries)-accepted, product.Name, workers,
		elapsed.Round(time.Microsecond), float64(len(queries))/elapsed.Seconds())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlparse:", err)
	os.Exit(1)
}

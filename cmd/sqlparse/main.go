// Command sqlparse parses SQL under a chosen product-line dialect and
// prints the parse tree, the typed AST, per-statement analysis, or
// re-rendered SQL. Products are resolved through the shared product
// catalog (internal/product), so the dialect's parser is composed once
// per process no matter how often it is used.
//
// Usage:
//
//	sqlparse -dialect core 'SELECT a FROM t WHERE b = 1'
//	echo 'SELECT * FROM sensors SAMPLE PERIOD 1024' | sqlparse -dialect tinysql -tree
//	sqlparse -dialect warehouse -render 'select a from t union select b from u'
//	sqlparse -dialect core -json 'SELECT a FROM t'      # same wire format as sqlserved
//	sqlparse -dialect core -ast 'SELECT a FROM t'       # typed AST, stable wire schema
//	sqlparse -dialect core -analyze 'SELECT a FROM t'   # tables/columns/flags per statement
//	sqlparse -dialect core -format 'select  a,b from t' # canonical re-render (/v1/format)
//	sqlparse -dialect core -format -minify 'SELECT ( a + b ) FROM t'
//
// -ast and -analyze emit the sqlserved wire structures as JSON (want=ast
// and want=analysis respectively); -format mirrors POST /v1/format,
// refusing statements the typed AST only preserves as source text.
//
// With -json the result — tree, AST or diagnostics — is emitted in the
// serving subsystem's wire format (internal/server): the CLI and the HTTP
// service share one response encoder, so a query parsed at the terminal
// and one parsed over the network produce the same JSON.
//
// On a parse failure the human-readable mode reports every failing
// statement of the script — statement recovery resynchronises at top-level
// semicolons — each with a line:col position and a caret excerpt pointing
// at the offending span. -json carries the same list structurally in the
// response's "diagnostics" field.
//
// The CLI resolves the dialect's serving engine through the catalog: a
// preset with a pregenerated parser (internal/engine/generated) parses on
// the generated backend, anything else on the interpreted one — the same
// promotion rule sqlserved applies.
//
// Batch mode is the serving path: one cached engine, many statements, many
// goroutines. Stdin is streamed through the statement iterator
// (internal/stream) — statements are split at top-level semicolons, so a
// multi-gigabyte dump is checked with memory proportional to its largest
// statement, never slurped. Verdicts print in input order; per-statement
// parse errors go to stderr with the statement's line in the input, and
// the exit status is nonzero if any statement failed:
//
//	sqlparse -dialect core -batch -workers 8 < dump.sql
//	sqlparse -dialect core -batch -json < dump.sql   # NDJSON, one object per statement
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"sqlspl/internal/ast"
	"sqlspl/internal/dialect"
	"sqlspl/internal/engine"
	"sqlspl/internal/lexer"
	"sqlspl/internal/parser"
	"sqlspl/internal/server"
	"sqlspl/internal/stream"
)

func main() {
	var (
		dialectN = flag.String("dialect", "core", "dialect: minimal|tinysql|scql|core|warehouse|full")
		tree     = flag.Bool("tree", false, "print the concrete parse tree")
		render   = flag.Bool("render", false, "print the SQL re-rendered from the typed AST")
		astOut   = flag.Bool("ast", false, "emit the typed AST as JSON (the sqlserved want=ast wire schema)")
		analyze  = flag.Bool("analyze", false, "emit per-statement analysis as JSON (the sqlserved want=analysis shape)")
		format   = flag.Bool("format", false, "re-render the input through the AST printers (POST /v1/format)")
		minify   = flag.Bool("minify", false, "with -format: whitespace-minimal output")
		jsonOut  = flag.Bool("json", false, "emit results as JSON in the sqlserved wire format")
		batch    = flag.Bool("batch", false, "batch mode: stream ';'-separated statements from stdin over one shared product")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parse goroutines in batch mode")
	)
	flag.Parse()
	if *minify && !*format {
		fatal(fmt.Errorf("-minify requires -format"))
	}
	if *format && *batch {
		fatal(fmt.Errorf("-format and -batch are mutually exclusive (format the whole script in one shot)"))
	}

	// Batch mode also needs the product's lexer (for the statement
	// iterator); Resolve hands back both halves of the catalog slot.
	prod, eng, err := dialect.Resolve(dialect.Name(*dialectN))
	if err != nil {
		fatal(err)
	}

	// The wire shape implied by the print flags: the default (statement
	// dump) corresponds to the AST shape. -ast and -analyze are JSON by
	// nature — they imply -json.
	want := server.WantAST
	switch {
	case *tree:
		want = server.WantTree
	case *render:
		want = server.WantRender
	case *analyze:
		want = server.WantAnalysis
		*jsonOut = true
	case *astOut:
		*jsonOut = true
	}

	if *batch {
		rejected, err := runBatch(eng, prod.Parser.Lexer(), os.Stdin, os.Stdout, *workers, *jsonOut, want)
		if err != nil {
			fatal(err)
		}
		if rejected > 0 {
			os.Exit(1)
		}
		return
	}

	sql := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(sql) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sql = string(data)
	}
	if strings.TrimSpace(sql) == "" {
		fatal(fmt.Errorf("no SQL given (argument or stdin)"))
	}

	if *format {
		resp := server.FormatOutcome(eng, sql, *minify)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(resp); err != nil {
				fatal(err)
			}
		} else if resp.OK {
			fmt.Println(resp.SQL)
		} else {
			fmt.Fprintln(os.Stderr, "sqlparse:", resp.Error.Message)
			for _, d := range resp.Diagnostics {
				fmt.Fprintln(os.Stderr, "sqlparse:", d.Message)
			}
		}
		if !resp.OK {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		// One parse, one JSON document — the shared encoder does the work.
		// Diagnostics ride inside the document; the exit status still
		// reports the verdict for scripting.
		resp := server.Outcome(eng, sql, want)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
		if !resp.OK {
			os.Exit(1)
		}
		return
	}

	parseTree, err := eng.Parse(sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, renderFailure(eng, sql))
		os.Exit(1)
	}
	if *tree {
		fmt.Print(parseTree.Dump())
		return
	}
	script, err := ast.NewBuilder(nil).Build(parseTree)
	if err != nil {
		fatal(err)
	}
	if *render {
		fmt.Println(script.SQL())
		return
	}
	for i, st := range script.Statements {
		fmt.Printf("-- statement %d: %T\n%s\n", i+1, st, st.SQL())
	}
}

// batchJob is one statement handed to a parse worker. Statement texts are
// immutable and retainable (the iterator's ownership contract), so jobs
// carry them without copying.
type batchJob struct {
	seq  int    // 1-based statement number, the N in "N: ACCEPT"
	line int    // the statement's first-token line in the input
	text string // raw statement span, trivia and ';' included
	// at locates the span in the whole input so failure diagnostics are
	// rebased to whole-input coordinates, matching a single-shot parse of
	// the same script.
	at server.Position
}

type batchDone struct {
	batchJob
	resp *server.ParseResponse
}

// runBatch streams ';'-separated statements from in through the statement
// iterator and parses them over the shared engine with the given number of
// goroutines — the catalog's serving path: the engine was resolved (or
// cache-hit) once, and it is safe for concurrent use. Memory stays
// proportional to the largest statement plus the worker window, never the
// input: the bounded job channel applies back-pressure to the scanner, and
// the reorder buffer can hold at most the in-flight window. Verdicts print
// in input order regardless of completion order; per-statement parse
// errors go to stderr and the returned count makes the exit status nonzero
// when any statement failed. With jsonOut the verdict lines are NDJSON in
// the sqlserved wire format (one compact ParseResponse per statement) and
// the summary moves to stderr so stdout stays machine-readable.
func runBatch(eng engine.Engine, lx *lexer.Lexer, in io.Reader, out io.Writer, workers int, jsonOut bool, want string) (rejected int, err error) {
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan batchJob, workers)
	results := make(chan batchDone, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				var r *server.ParseResponse
				if jsonOut {
					// OutcomeAt rebases the statement-relative error and
					// recovery diagnostics to whole-input coordinates, so
					// the NDJSON records carry the same positions a
					// single-shot parse of the script would report.
					r = server.OutcomeAt(eng, j.text, want, j.at)
				} else {
					// Verdict-only: parse without building a response shape,
					// preserving batch mode's original parse-only semantics.
					r = &server.ParseResponse{Dialect: eng.Info().Product}
					if _, err := eng.Parse(j.text); err != nil {
						r.Error = server.EncodeDiagnostic(server.RelocateError(err, j.at))
					} else {
						r.OK = true
					}
				}
				results <- batchDone{j, r}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The emitter re-sequences completions: results arrive in any order,
	// print in seq order. Its buffer is bounded by the in-flight window
	// (jobs channel + one per worker), not the input.
	type emitTotals struct {
		accepted, rejected int
		err                error
	}
	emitted := make(chan emitTotals, 1)
	go func() {
		var t emitTotals
		pending := map[int]batchDone{}
		next := 1
		for d := range results {
			pending[d.seq] = d
			for {
				d, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if d.resp.OK {
					t.accepted++
				} else {
					t.rejected++
					fmt.Fprintf(os.Stderr, "sqlparse: line %d: %s\n", d.line, d.resp.Error.Message)
				}
				if t.err != nil {
					continue // keep draining, first error wins
				}
				switch {
				case jsonOut:
					data, err := json.Marshal(d.resp)
					if err != nil {
						t.err = err
						continue
					}
					fmt.Fprintf(out, "%s\n", data)
				case d.resp.OK:
					fmt.Fprintf(out, "%d: ACCEPT\n", d.seq)
				default:
					fmt.Fprintf(out, "%d: REJECT %s\n", d.seq, d.resp.Error.Message)
				}
			}
		}
		emitted <- t
	}()

	start := time.Now()
	sc := stream.NewScanner(lx, in, stream.Config{})
	seq := 0
	var scanErr error
	// One statement is held back so every job knows whether a later
	// statement exists — diagnostics then carry the recovery pass's
	// "statement skipped" hint exactly as a whole-script parse would.
	var pending *batchJob
	dispatch := func(j batchJob, hasMore bool) {
		j.at.HasMore = hasMore
		jobs <- j
	}
	for {
		st, err := sc.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				scanErr = err
			}
			break
		}
		if len(st.Tokens) == 0 && st.Err == nil {
			continue // trivia-only tail: nothing to parse
		}
		// Tokens are valid only until the next Next call: take the line now.
		line := st.Line
		switch {
		case len(st.Tokens) > 0:
			line = st.Line + st.Tokens[0].Line - 1
		case st.Err != nil:
			line = st.Line + st.Err.Line - 1
		}
		seq++
		j := batchJob{seq: seq, line: line, text: st.Text,
			at: server.Position{Off: st.Off, Line: st.Line, Col: st.Col}}
		if pending != nil {
			dispatch(*pending, true)
		}
		pending = &j
	}
	// The held-back statement is complete even when the scan aborted after
	// it; on abort unread input remained, so it was not the last statement.
	if pending != nil {
		dispatch(*pending, scanErr != nil)
	}
	close(jobs)
	totals := <-emitted
	elapsed := time.Since(start)

	if scanErr != nil {
		return 0, scanErr
	}
	if totals.err != nil {
		return 0, totals.err
	}
	if seq == 0 {
		return 0, fmt.Errorf("batch mode: no queries on stdin")
	}
	summary := fmt.Sprintf("-- %d statements: %d accepted, %d rejected (dialect %s, %d workers, %s, %.0f q/s)\n",
		seq, totals.accepted, totals.rejected, eng.Info().Product, workers,
		elapsed.Round(time.Microsecond), float64(seq)/elapsed.Seconds())
	if jsonOut {
		fmt.Fprint(os.Stderr, summary)
	} else {
		fmt.Fprint(out, summary)
	}
	return totals.rejected, nil
}

// renderFailure runs statement recovery over a rejected script and renders
// every diagnostic with a caret excerpt — all the errors, not just the
// farthest failure the parse itself reported. (Generated engines delegate
// Diagnose to the interpreted parser; the output is identical.)
func renderFailure(eng engine.Engine, sql string) string {
	diags := eng.Diagnose(sql)
	if len(diags) == 0 {
		// Parse failed but recovery found nothing to report; never fail
		// silently.
		return "sqlparse: parse failed"
	}
	return parser.RenderDiagnostics(sql, diags)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlparse:", err)
	os.Exit(1)
}

// Command sqlparse parses SQL under a chosen product-line dialect and
// prints the parse tree, the typed AST, or re-rendered SQL. Products are
// resolved through the shared product catalog (internal/product), so the
// dialect's parser is composed once per process no matter how often it is
// used.
//
// Usage:
//
//	sqlparse -dialect core 'SELECT a FROM t WHERE b = 1'
//	echo 'SELECT * FROM sensors SAMPLE PERIOD 1024' | sqlparse -dialect tinysql -tree
//	sqlparse -dialect warehouse -render 'select a from t union select b from u'
//	sqlparse -dialect core -json 'SELECT a FROM t'   # same wire format as sqlserved
//
// With -json the result — tree, AST or diagnostics — is emitted in the
// serving subsystem's wire format (internal/server): the CLI and the HTTP
// service share one response encoder, so a query parsed at the terminal
// and one parsed over the network produce the same JSON.
//
// On a parse failure the human-readable mode reports every failing
// statement of the script — statement recovery resynchronises at top-level
// semicolons — each with a line:col position and a caret excerpt pointing
// at the offending span. -json carries the same list structurally in the
// response's "diagnostics" field.
//
// The CLI resolves the dialect's serving engine through the catalog: a
// preset with a pregenerated parser (internal/engine/generated) parses on
// the generated backend, anything else on the interpreted one — the same
// promotion rule sqlserved applies.
//
// Batch mode is the serving path: one cached engine, many queries, many
// goroutines. It reads one query per line from stdin, parses them over the
// shared parser, and reports per-query verdicts in input order plus a
// summary. Per-line parse errors go to stderr, and the exit status is
// nonzero if any line failed:
//
//	sqlparse -dialect core -batch -workers 8 < queries.sql
//	sqlparse -dialect core -batch -json < queries.sql   # NDJSON, one object per line
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"sqlspl/internal/ast"
	"sqlspl/internal/dialect"
	"sqlspl/internal/engine"
	"sqlspl/internal/parser"
	"sqlspl/internal/server"
)

func main() {
	var (
		dialectN = flag.String("dialect", "core", "dialect: minimal|tinysql|scql|core|warehouse|full")
		tree     = flag.Bool("tree", false, "print the concrete parse tree")
		render   = flag.Bool("render", false, "print the SQL re-rendered from the typed AST")
		jsonOut  = flag.Bool("json", false, "emit results as JSON in the sqlserved wire format")
		batch    = flag.Bool("batch", false, "batch mode: parse one query per stdin line over one shared product")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parse goroutines in batch mode")
	)
	flag.Parse()

	eng, err := dialect.Engine(dialect.Name(*dialectN))
	if err != nil {
		fatal(err)
	}

	// The wire shape implied by the print flags: the default (statement
	// dump) corresponds to the AST shape.
	want := server.WantAST
	switch {
	case *tree:
		want = server.WantTree
	case *render:
		want = server.WantRender
	}

	if *batch {
		rejected, err := runBatch(eng, os.Stdin, os.Stdout, *workers, *jsonOut, want)
		if err != nil {
			fatal(err)
		}
		if rejected > 0 {
			os.Exit(1)
		}
		return
	}

	sql := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(sql) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sql = string(data)
	}
	if strings.TrimSpace(sql) == "" {
		fatal(fmt.Errorf("no SQL given (argument or stdin)"))
	}

	if *jsonOut {
		// One parse, one JSON document — the shared encoder does the work.
		// Diagnostics ride inside the document; the exit status still
		// reports the verdict for scripting.
		resp := server.Outcome(eng, sql, want)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
		if !resp.OK {
			os.Exit(1)
		}
		return
	}

	parseTree, err := eng.Parse(sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, renderFailure(eng, sql))
		os.Exit(1)
	}
	if *tree {
		fmt.Print(parseTree.Dump())
		return
	}
	script, err := ast.NewBuilder(nil).Build(parseTree)
	if err != nil {
		fatal(err)
	}
	if *render {
		fmt.Println(script.SQL())
		return
	}
	for i, st := range script.Statements {
		fmt.Printf("-- statement %d: %T\n%s\n", i+1, st, st.SQL())
	}
}

// runBatch parses every non-blank line of in over the shared engine with
// the given number of goroutines — the catalog's serving path: the engine
// was resolved (or cache-hit) once, and it is safe for concurrent use.
// Verdicts print in input order regardless of completion order; per-line
// parse errors go to stderr and the returned count makes the exit status
// nonzero when any line failed. With jsonOut the verdict lines are NDJSON
// in the sqlserved wire format (one compact ParseResponse per query) and
// the summary moves to stderr so stdout stays machine-readable.
func runBatch(eng engine.Engine, in io.Reader, out io.Writer, workers int, jsonOut bool, want string) (rejected int, err error) {
	if workers < 1 {
		workers = 1
	}
	var queries []string
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if q := strings.TrimSpace(scanner.Text()); q != "" {
			queries = append(queries, q)
		}
	}
	if err := scanner.Err(); err != nil {
		return 0, err
	}
	if len(queries) == 0 {
		return 0, fmt.Errorf("batch mode: no queries on stdin")
	}

	responses := make([]*server.ParseResponse, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if jsonOut {
					responses[i] = server.Outcome(eng, queries[i], want)
					continue
				}
				// Verdict-only: parse without building a response shape,
				// preserving batch mode's original parse-only semantics.
				r := &server.ParseResponse{Dialect: eng.Info().Product}
				if _, err := eng.Parse(queries[i]); err != nil {
					r.Error = server.EncodeDiagnostic(err)
				} else {
					r.OK = true
				}
				responses[i] = r
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	accepted := 0
	for i, resp := range responses {
		if resp.OK {
			accepted++
		} else {
			fmt.Fprintf(os.Stderr, "sqlparse: line %d: %s\n", i+1, resp.Error.Message)
		}
		if jsonOut {
			data, err := json.Marshal(resp)
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(out, "%s\n", data)
		} else if resp.OK {
			fmt.Fprintf(out, "%d: ACCEPT\n", i+1)
		} else {
			fmt.Fprintf(out, "%d: REJECT %s\n", i+1, resp.Error.Message)
		}
	}
	summary := fmt.Sprintf("-- %d queries: %d accepted, %d rejected (dialect %s, %d workers, %s, %.0f q/s)\n",
		len(queries), accepted, len(queries)-accepted, eng.Info().Product, workers,
		elapsed.Round(time.Microsecond), float64(len(queries))/elapsed.Seconds())
	if jsonOut {
		fmt.Fprint(os.Stderr, summary)
	} else {
		fmt.Fprint(out, summary)
	}
	return len(queries) - accepted, nil
}

// renderFailure runs statement recovery over a rejected script and renders
// every diagnostic with a caret excerpt — all the errors, not just the
// farthest failure the parse itself reported. (Generated engines delegate
// Diagnose to the interpreted parser; the output is identical.)
func renderFailure(eng engine.Engine, sql string) string {
	diags := eng.Diagnose(sql)
	if len(diags) == 0 {
		// Parse failed but recovery found nothing to report; never fail
		// silently.
		return "sqlparse: parse failed"
	}
	return parser.RenderDiagnostics(sql, diags)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlparse:", err)
	os.Exit(1)
}

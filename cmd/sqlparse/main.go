// Command sqlparse parses SQL under a chosen product-line dialect and
// prints the parse tree, the typed AST, or re-rendered SQL.
//
// Usage:
//
//	sqlparse -dialect core 'SELECT a FROM t WHERE b = 1'
//	echo 'SELECT * FROM sensors SAMPLE PERIOD 1024' | sqlparse -dialect tinysql -tree
//	sqlparse -dialect warehouse -render 'select a from t union select b from u'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sqlspl/internal/ast"
	"sqlspl/internal/dialect"
)

func main() {
	var (
		dialectN = flag.String("dialect", "core", "dialect: minimal|tinysql|scql|core|warehouse|full")
		tree     = flag.Bool("tree", false, "print the concrete parse tree")
		render   = flag.Bool("render", false, "print the SQL re-rendered from the typed AST")
	)
	flag.Parse()

	sql := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(sql) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sql = string(data)
	}
	if strings.TrimSpace(sql) == "" {
		fatal(fmt.Errorf("no SQL given (argument or stdin)"))
	}

	product, err := dialect.Build(dialect.Name(*dialectN))
	if err != nil {
		fatal(err)
	}
	parseTree, err := product.Parse(sql)
	if err != nil {
		fatal(err)
	}
	if *tree {
		fmt.Print(parseTree.Dump())
		return
	}
	script, err := ast.NewBuilder(nil).Build(parseTree)
	if err != nil {
		fatal(err)
	}
	if *render {
		fmt.Println(script.SQL())
		return
	}
	for i, st := range script.Statements {
		fmt.Printf("-- statement %d: %T\n%s\n", i+1, st, st.SQL())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlparse:", err)
	os.Exit(1)
}

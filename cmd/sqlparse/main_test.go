package main

import (
	"bufio"
	"errors"
	"strings"
	"testing"

	"sqlspl/internal/dialect"
	"sqlspl/internal/engine"
)

func coreEngine(t *testing.T) engine.Engine {
	t.Helper()
	eng, err := dialect.Engine(dialect.Core)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// A scanner error mid-batch (here: a line longer than the scanner's buffer)
// must surface as a batch failure, not be silently swallowed after the
// queries read so far.
func TestRunBatchScannerErrorPropagates(t *testing.T) {
	eng := coreEngine(t)
	in := strings.NewReader("SELECT a FROM t\n" + strings.Repeat("x", (1<<20)+16) + "\n")
	var out strings.Builder
	_, err := runBatch(eng, in, &out, 2, false, "verdict")
	if err == nil {
		t.Fatal("runBatch swallowed the scanner error")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("err = %v, want bufio.ErrTooLong", err)
	}
}

func TestRunBatchVerdictsInOrder(t *testing.T) {
	eng := coreEngine(t)
	in := strings.NewReader("SELECT a FROM t\nSELECT FROM t\n\nSELECT b FROM u\n")
	var out strings.Builder
	rejected, err := runBatch(eng, in, &out, 4, false, "verdict")
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
	got := out.String()
	for _, want := range []string{"1: ACCEPT", "2: REJECT", "3: ACCEPT", "3 queries: 2 accepted, 1 rejected"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestRunBatchEmptyInput(t *testing.T) {
	eng := coreEngine(t)
	var out strings.Builder
	if _, err := runBatch(eng, strings.NewReader("\n  \n"), &out, 1, false, "verdict"); err == nil {
		t.Error("blank batch input should be reported, got nil error")
	}
}

// The human failure report carries one caret-annotated diagnostic per
// failing statement, with 1-based line:col positions.
func TestRenderFailureCarets(t *testing.T) {
	eng := coreEngine(t)
	script := "SELECT a FROM t ;\nSELECT FROM t ;\nDELETE t"
	got := renderFailure(eng, script)
	for _, want := range []string{"2:8:", "3:8:", "SELECT FROM t ;", "^"} {
		if !strings.Contains(got, want) {
			t.Errorf("report lacks %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "1:") && strings.HasPrefix(got, "1:") {
		t.Errorf("valid first statement produced a diagnostic:\n%s", got)
	}
}

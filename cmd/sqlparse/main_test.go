package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"sqlspl/internal/core"
	"sqlspl/internal/dialect"
	"sqlspl/internal/engine"
	"sqlspl/internal/server"
)

func coreResolve(t *testing.T) (*core.Product, engine.Engine) {
	t.Helper()
	prod, eng, err := dialect.Resolve(dialect.Core)
	if err != nil {
		t.Fatal(err)
	}
	return prod, eng
}

// errAfter yields its payload, then fails: a mid-stream read error (network
// drop, truncated pipe) must surface as a batch failure, not be silently
// swallowed after the statements read so far.
type errAfter struct {
	r   io.Reader
	err error
}

func (e *errAfter) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, e.err
	}
	return n, err
}

func TestRunBatchReadErrorPropagates(t *testing.T) {
	prod, eng := coreResolve(t)
	boom := errors.New("boom: connection reset")
	in := &errAfter{r: strings.NewReader("SELECT a FROM t;\nSELECT b FROM u"), err: boom}
	var out strings.Builder
	_, err := runBatch(eng, prod.Parser.Lexer(), in, &out, 2, false, "verdict")
	if err == nil {
		t.Fatal("runBatch swallowed the read error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the reader's error", err)
	}
}

func TestRunBatchVerdictsInOrder(t *testing.T) {
	prod, eng := coreResolve(t)
	in := strings.NewReader("SELECT a FROM t;\nSELECT FROM t;\n\nSELECT b FROM u;\n")
	var out strings.Builder
	rejected, err := runBatch(eng, prod.Parser.Lexer(), in, &out, 4, false, "verdict")
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
	got := out.String()
	for _, want := range []string{"1: ACCEPT", "2: REJECT", "3: ACCEPT", "3 statements: 2 accepted, 1 rejected"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
	// In order means in order: seq 1 before 2 before 3 even with 4 workers.
	if i1, i2, i3 := strings.Index(got, "1: "), strings.Index(got, "2: "), strings.Index(got, "3: "); !(i1 < i2 && i2 < i3) {
		t.Errorf("verdicts out of order:\n%s", got)
	}
}

// Statements split at top-level semicolons, not newlines: a statement may
// span lines, several may share one, and ';' inside strings or parens does
// not split. Stderr positions report the statement's first-token line.
func TestRunBatchSplitsAtTopLevelSemicolons(t *testing.T) {
	prod, eng := coreResolve(t)
	in := strings.NewReader("SELECT a\nFROM t;SELECT 'x;y'\nFROM u;\n-- comment\nSELECT FROM v;\n")
	var out strings.Builder
	rejected, err := runBatch(eng, prod.Parser.Lexer(), in, &out, 2, false, "verdict")
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
	got := out.String()
	for _, want := range []string{"1: ACCEPT", "2: ACCEPT", "3: REJECT", "3 statements: 2 accepted, 1 rejected"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

// Batch memory is bounded by the largest statement, not the input: a script
// larger than any fixed line buffer streams through without error.
func TestRunBatchStreamsLargeScript(t *testing.T) {
	prod, eng := coreResolve(t)
	const n = 60000 // ~1.6 MB of script, far beyond the old 1 MiB line cap
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "SELECT c%d FROM t%d;\n", i, i)
	}
	var out strings.Builder
	rejected, err := runBatch(eng, prod.Parser.Lexer(), strings.NewReader(sb.String()), &out, 4, false, "verdict")
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 0 {
		t.Errorf("rejected = %d, want 0", rejected)
	}
	if want := fmt.Sprintf("%d statements: %d accepted, 0 rejected", n, n); !strings.Contains(out.String(), want) {
		t.Errorf("summary lacks %q", want)
	}
}

func TestRunBatchEmptyInput(t *testing.T) {
	prod, eng := coreResolve(t)
	var out strings.Builder
	if _, err := runBatch(eng, prod.Parser.Lexer(), strings.NewReader("\n  \n"), &out, 1, false, "verdict"); err == nil {
		t.Error("blank batch input should be reported, got nil error")
	}
}

func TestRunBatchJSONOutput(t *testing.T) {
	prod, eng := coreResolve(t)
	in := strings.NewReader("SELECT a FROM t;\nSELECT FROM t")
	var out strings.Builder
	rejected, err := runBatch(eng, prod.Parser.Lexer(), in, &out, 1, true, "verdict")
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], `"ok":true`) || !strings.Contains(lines[1], `"ok":false`) {
		t.Errorf("NDJSON verdicts wrong:\n%s", out.String())
	}
	if strings.Contains(out.String(), "statements:") {
		t.Errorf("summary leaked onto stdout in -json mode:\n%s", out.String())
	}
}

// Regression: batch -json failures used to carry statement-relative
// diagnostics — a failure on line 4 of the input reported line 1 or 2,
// because each statement was parsed in isolation. The NDJSON records must
// locate errors in whole-input coordinates, with the recovery pass's
// "statement skipped" hint on failing statements that are not the last,
// exactly like a single-shot parse of the same script.
func TestRunBatchJSONDiagnosticsWholeInputCoordinates(t *testing.T) {
	prod, eng := coreResolve(t)
	in := strings.NewReader("-- header comment\nSELECT a FROM t;\nSELECT b FROM u;\nSELECT FROM v;\nSELECT c FROM w\n")
	var out strings.Builder
	rejected, err := runBatch(eng, prod.Parser.Lexer(), in, &out, 2, true, "verdict")
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d, want 1:\n%s", rejected, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 NDJSON lines, got %d:\n%s", len(lines), out.String())
	}
	var resp server.ParseResponse
	if err := json.Unmarshal([]byte(lines[2]), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == nil || len(resp.Diagnostics) == 0 {
		t.Fatalf("failing statement lacks structured diagnostics: %s", lines[2])
	}
	// "SELECT FROM v" sits on line 4 of the input; FROM is at column 8.
	if resp.Error.Line != 4 || resp.Error.Col != 8 {
		t.Errorf("error at %d:%d, want 4:8 (whole-input coordinates): %+v", resp.Error.Line, resp.Error.Col, resp.Error)
	}
	d := resp.Diagnostics[0]
	if d.Line != 4 || d.Col != 8 {
		t.Errorf("diagnostic at %d:%d, want 4:8: %+v", d.Line, d.Col, d)
	}
	if !strings.Contains(d.Message, "4:8") {
		t.Errorf("diagnostic message keeps statement-relative position: %q", d.Message)
	}
	if off := strings.Index("-- header comment\nSELECT a FROM t;\nSELECT b FROM u;\nSELECT FROM v;\nSELECT c FROM w\n", "FROM v"); d.Off != off {
		t.Errorf("diagnostic offset = %d, want %d", d.Off, off)
	}
	if d.Hint != "statement skipped" {
		t.Errorf("mid-script failure lacks skip hint: %+v", d)
	}
}

// The human failure report carries one caret-annotated diagnostic per
// failing statement, with 1-based line:col positions.
func TestRenderFailureCarets(t *testing.T) {
	_, eng := coreResolve(t)
	script := "SELECT a FROM t ;\nSELECT FROM t ;\nDELETE t"
	got := renderFailure(eng, script)
	for _, want := range []string{"2:8:", "3:8:", "SELECT FROM t ;", "^"} {
		if !strings.Contains(got, want) {
			t.Errorf("report lacks %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "1:") && strings.HasPrefix(got, "1:") {
		t.Errorf("valid first statement produced a diagnostic:\n%s", got)
	}
}

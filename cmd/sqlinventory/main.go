// Command sqlinventory reproduces the paper's decomposition inventory
// (experiments E1-E3): "Overall 40 feature diagrams are obtained for SQL
// Foundation with more than 500 features."
//
// Usage:
//
//	sqlinventory                       # summary table, one row per diagram
//	sqlinventory -diagram table_expression   # render one diagram as a tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sqlspl/internal/feature"
	"sqlspl/internal/sql2003"
)

func main() {
	var (
		diagram  = flag.String("diagram", "", "render the named feature diagram")
		bySchema = flag.Bool("by-schema-element", false, "group diagrams by the schema element they operate on (the paper's alternative classification)")
	)
	flag.Parse()

	m := sql2003.MustModel()

	if *bySchema {
		fmt.Printf("%-14s %9s  %s\n", "ELEMENT", "FEATURES", "DIAGRAMS")
		for _, g := range sql2003.SchemaElementView() {
			fmt.Printf("%-14s %9d  %s\n", g.Element, g.Features, strings.Join(g.Diagrams, ", "))
		}
		return
	}

	if *diagram != "" {
		for _, d := range m.Diagrams {
			if d.Name == *diagram {
				renderDiagram(d)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "sqlinventory: no diagram %q\n", *diagram)
		os.Exit(1)
	}

	fmt.Printf("%-24s %9s %10s %12s  %s\n", "DIAGRAM", "FEATURES", "UNITS", "PRODUCTS", "DESCRIPTION")
	totalFeatures, totalUnits := 0, 0
	for _, d := range m.Diagrams {
		units := map[string]bool{}
		d.WalkFeatures(func(f *feature.Feature) {
			for _, u := range f.Units {
				units[u] = true
			}
		})
		products := feature.CountProducts(d)
		fmt.Printf("%-24s %9d %10d %12d  %s\n", d.Name, d.Count(), len(units), products, d.Doc)
		totalFeatures += d.Count()
		totalUnits += len(units)
	}
	fmt.Printf("%-24s %9d %10d\n", "TOTAL", totalFeatures, totalUnits)
	fmt.Printf("\n%d feature diagrams, %d features, %d grammar/token units, %d cross-tree constraints\n",
		len(m.Diagrams), m.FeatureCount(), len(sql2003.UnitNames()), len(m.Constraints))
	fmt.Printf("paper (Sunkle et al. 2008) reports: 40 diagrams, more than 500 features\n")
}

func renderDiagram(d *feature.Diagram) {
	fmt.Printf("%s — %s\n", d.Name, d.Doc)
	var walk func(f *feature.Feature, depth int)
	walk = func(f *feature.Feature, depth int) {
		var marks []string
		if f.Optional {
			marks = append(marks, "optional")
		} else if depth > 0 && f.Parent() != nil && f.Parent().Group == feature.And {
			marks = append(marks, "mandatory")
		}
		switch f.Group {
		case feature.Or:
			marks = append(marks, "or-group")
		case feature.Alternative:
			marks = append(marks, "alternative-group")
		}
		if f.HasCardinality() {
			marks = append(marks, f.CardinalityString())
		}
		if len(f.Units) > 0 {
			marks = append(marks, "units: "+strings.Join(f.Units, ","))
		}
		suffix := ""
		if len(marks) > 0 {
			suffix = "  [" + strings.Join(marks, "; ") + "]"
		}
		fmt.Printf("%s%s%s\n", strings.Repeat("  ", depth), f.Name, suffix)
		for _, c := range f.Children {
			walk(c, depth+1)
		}
	}
	walk(d.Root, 0)
}

// Command sqldiff compares two products of the line: reserved words,
// productions, refined productions, and optionally the fate of probe
// queries under each.
//
//	sqldiff -a minimal -b tinysql
//	sqldiff -a scql -b core -probe 'SELECT a FROM t ORDER BY a' -probe 'DELETE FROM t'
package main

import (
	"flag"
	"fmt"
	"os"

	"sqlspl/internal/dialect"
	"sqlspl/internal/diff"
)

type probeList []string

func (p *probeList) String() string { return fmt.Sprint(*p) }
func (p *probeList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	var (
		aName  = flag.String("a", "minimal", "first dialect")
		bName  = flag.String("b", "full", "second dialect")
		probes probeList
	)
	flag.Var(&probes, "probe", "SQL probe to run under both products (repeatable)")
	flag.Parse()

	a, err := dialect.Build(dialect.Name(*aName))
	if err != nil {
		fatal(err)
	}
	b, err := dialect.Build(dialect.Name(*bName))
	if err != nil {
		fatal(err)
	}
	fmt.Print(diff.Compare(a, b, probes).String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqldiff:", err)
	os.Exit(1)
}

// Command sqlserved serves the product line's parsers over HTTP: parse
// requests for any preset dialect or explicit feature selection resolve
// through the shared product catalog, with admission control, per-request
// deadlines, graceful drain on SIGTERM/SIGINT, and built-in telemetry at
// /metrics (Prometheus text or JSON). Preset dialects serve through their
// pregenerated standalone parsers (the catalog promotes matching builds;
// see sqlspl_catalog_promotions_total in /metrics); explicit feature
// selections serve through the interpreted engine.
//
//	sqlserved -addr :8080 -warm all
//	curl -s localhost:8080/v1/parse -d '{"dialect":"tinysql","sql":"SELECT nodeid FROM sensors SAMPLE PERIOD 1024"}'
//	curl -s localhost:8080/metrics
//
// Load-generator mode starts a private in-process server and drives it
// with internal/workload traffic over real HTTP, printing a per-dialect
// throughput/latency table and cross-checking /metrics against the
// request count — the serving benchmark recorded in EXPERIMENTS.md.
// -hot restricts the pools to a hot set so the verdict cache absorbs the
// load; -stream-mb switches to streaming mode (multi-MB scripts through
// /v1/stream); -mem-ceiling-mb makes the run's peak heap a hard gate:
//
//	sqlserved -loadgen -n 12000 -loadgen-dialects tinysql,scql,core -concurrency 32
//	sqlserved -loadgen -n 50000 -want verdict -hot 64
//	sqlserved -loadgen -n 2 -stream-mb 64 -loadgen-dialects core -concurrency 1 -mem-ceiling-mb 256
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sqlspl/internal/dialect"
	"sqlspl/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInFlight = flag.Int("max-inflight", 0, "admission bound on concurrent requests (0 = 4×GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request deadline")
		workers     = flag.Int("workers", 0, "parse goroutines per batch request (0 = GOMAXPROCS)")
		warm        = flag.String("warm", "", "comma-separated presets to build before readiness, or 'all'")

		loadgen     = flag.Bool("loadgen", false, "run the load generator against a private in-process server")
		n           = flag.Int("n", 12000, "loadgen: total requests")
		lgDialects  = flag.String("loadgen-dialects", "tinysql,scql,core", "loadgen: comma-separated preset dialects to drive")
		concurrency = flag.Int("concurrency", 32, "loadgen: concurrent client connections")
		want        = flag.String("want", "render", "loadgen: response shape per request (verdict|tree|ast|render|analysis)")
		seed        = flag.Uint64("seed", 1, "loadgen: workload seed")
		hot         = flag.Int("hot", 0, "loadgen: restrict each dialect's pool to this many distinct statements (hot-set cache mode)")
		streamMB    = flag.Int("stream-mb", 0, "loadgen: stream mode — POST scripts of at least this many MB to /v1/stream")
		memCeiling  = flag.Int("mem-ceiling-mb", 0, "loadgen: fail if peak heap exceeds this many MB during the run")
	)
	flag.Parse()

	if *loadgen {
		if err := runLoadgen(loadgenConfig{
			total:        *n,
			dialects:     splitList(*lgDialects),
			concurrency:  *concurrency,
			want:         *want,
			seed:         *seed,
			timeout:      *timeout,
			hot:          *hot,
			streamMB:     *streamMB,
			memCeilingMB: *memCeiling,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "sqlserved:", err)
			os.Exit(1)
		}
		return
	}

	warmList, err := parseWarm(*warm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlserved:", err)
		os.Exit(1)
	}
	s := server.New(server.Config{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		BatchWorkers:   *workers,
		Warm:           warmList,
	})
	bound, err := s.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlserved:", err)
		os.Exit(1)
	}
	log.Printf("sqlserved: serving on %s (%d presets warmed, deadline %s)", bound, len(warmList), *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("sqlserved: draining (in-flight requests completing)")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("sqlserved: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("sqlserved: drained cleanly")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseWarm resolves the -warm flag to preset names, validating each.
func parseWarm(s string) ([]dialect.Name, error) {
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		return dialect.Names(), nil
	}
	var out []dialect.Name
	for _, part := range splitList(s) {
		name := dialect.Name(part)
		if _, err := dialect.Features(name); err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	return out, nil
}

// loadgen.go is the end-to-end serving benchmark: it starts a private
// sqlserved instance (fresh catalog, fresh registry — so /metrics reflects
// exactly this run), drives it over real HTTP with the deterministic
// workloads from internal/workload, and prints a per-dialect
// throughput/latency table. It then cross-checks the server's own
// telemetry against the client's request count: the latency histogram must
// have observed every request, and the product-cache hit/miss/coalesce
// counters must sum to the request count (every request resolves the
// catalog exactly once). Any request error or telemetry mismatch makes the
// run fail — this is the acceptance gate, not just a benchmark.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlspl/internal/product"
	"sqlspl/internal/server"
	"sqlspl/internal/sql2003"
	"sqlspl/internal/telemetry"
	"sqlspl/internal/workload"
)

type loadgenConfig struct {
	total       int
	dialects    []string
	concurrency int
	want        string
	seed        uint64
	timeout     time.Duration
}

// runLoadgen drives the benchmark and returns an error on any failed
// request or telemetry mismatch.
func runLoadgen(cfg loadgenConfig) error {
	if cfg.total < 1 {
		return fmt.Errorf("loadgen: -n must be positive")
	}
	if len(cfg.dialects) == 0 {
		return fmt.Errorf("loadgen: no dialects")
	}
	if cfg.concurrency < 1 {
		cfg.concurrency = 1
	}
	if !server.ValidWant(cfg.want) {
		return fmt.Errorf("loadgen: unknown want %q", cfg.want)
	}

	// Pre-generate the traffic: one deterministic pool per dialect, cycled
	// by request index. Request i targets dialect i%len — round-robin, so
	// every dialect's parser serves interleaved traffic, the serving shape
	// the catalog exists for.
	pool := map[string][]string{}
	poolSize := cfg.total/len(cfg.dialects) + 1
	if poolSize > 2000 {
		poolSize = 2000 // cycle a bounded pool; determinism is per-seed anyway
	}
	for i, d := range cfg.dialects {
		queries, ok := workload.ForDialect(d, cfg.seed+uint64(i), poolSize)
		if !ok {
			return fmt.Errorf("loadgen: no workload for dialect %q", d)
		}
		pool[d] = queries
	}

	// Private server: its catalog and registry see only this run.
	s := server.New(server.Config{
		Catalog:        product.NewCatalog(sql2003.MustModel(), sql2003.Registry{}),
		Registry:       telemetry.NewRegistry(),
		MaxInFlight:    2 * cfg.concurrency, // never shed our own load
		RequestTimeout: cfg.timeout,
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	base := "http://" + addr
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.concurrency * 2,
		MaxIdleConnsPerHost: cfg.concurrency * 2,
	}}
	defer client.CloseIdleConnections()
	if err := waitReady(client, base, 10*time.Second); err != nil {
		return err
	}

	fmt.Printf("loadgen: %d requests, dialects [%s], concurrency %d, want %s, seed %d\n",
		cfg.total, strings.Join(cfg.dialects, " "), cfg.concurrency, cfg.want, cfg.seed)

	// Fire. Latencies land in a preallocated per-request slice (workers
	// write disjoint indices; no lock), errors in a bounded sample.
	latencies := make([]time.Duration, cfg.total)
	failed := make([]bool, cfg.total)
	var errCount atomic.Uint64
	var errSample sync.Map
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.total {
					return
				}
				d := cfg.dialects[i%len(cfg.dialects)]
				q := pool[d][(i/len(cfg.dialects))%len(pool[d])]
				t0 := time.Now()
				err := postParse(client, base, server.ParseRequest{Dialect: d, SQL: q, Want: cfg.want})
				latencies[i] = time.Since(t0)
				if err != nil {
					failed[i] = true
					errCount.Add(1)
					errSample.LoadOrStore(fmt.Sprintf("%s: %v", d, err), true)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	printTable(cfg, latencies, failed, elapsed)
	errs := int(errCount.Load())
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d/%d requests failed; sample:\n", errs, cfg.total)
		shown := 0
		errSample.Range(func(k, _ any) bool {
			fmt.Fprintf(os.Stderr, "  %s\n", k)
			shown++
			return shown < 5
		})
	}

	mismatches, err := verifyMetrics(client, base, cfg.total)
	if err != nil {
		return err
	}
	if errs > 0 || mismatches > 0 {
		return fmt.Errorf("loadgen: %d request errors, %d telemetry mismatches", errs, mismatches)
	}
	fmt.Printf("loadgen: OK — %d requests, zero errors, telemetry consistent\n", cfg.total)
	return nil
}

// postParse issues one parse request; any transport failure, non-200
// status or ok=false response is an error.
func postParse(client *http.Client, base string, req server.ParseRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/parse", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, truncate(string(data), 200))
	}
	var pr server.ParseResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		return err
	}
	if !pr.OK {
		return fmt.Errorf("parse rejected: %s", truncate(pr.Error.Message, 200))
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// waitReady polls /readyz until 200 or the deadline.
func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %s", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// printTable renders the per-dialect and total throughput/latency rows.
func printTable(cfg loadgenConfig, latencies []time.Duration, failed []bool, elapsed time.Duration) {
	fmt.Printf("%-11s %9s %7s %11s %9s %9s %9s\n",
		"DIALECT", "REQUESTS", "ERRORS", "QPS", "P50", "P95", "P99")
	row := func(name string, lats []time.Duration, errs int, wall time.Duration) {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) time.Duration {
			if len(lats) == 0 {
				return 0
			}
			i := int(p * float64(len(lats)))
			if i >= len(lats) {
				i = len(lats) - 1
			}
			return lats[i]
		}
		qps := float64(len(lats)) / wall.Seconds()
		fmt.Printf("%-11s %9d %7d %11.0f %9s %9s %9s\n", name, len(lats), errs, qps,
			q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond), q(0.99).Round(time.Microsecond))
	}
	for di, d := range cfg.dialects {
		var lats []time.Duration
		errs := 0
		for i := di; i < cfg.total; i += len(cfg.dialects) {
			lats = append(lats, latencies[i])
			if failed[i] {
				errs++
			}
		}
		// Per-dialect QPS shares the wall clock: dialects are interleaved,
		// so each row reports its share of the total rate.
		row(d, lats, errs, elapsed)
	}
	all := make([]time.Duration, len(latencies))
	copy(all, latencies)
	totalErrs := 0
	for _, f := range failed {
		if f {
			totalErrs++
		}
	}
	row("TOTAL", all, totalErrs, elapsed)
}

// verifyMetrics scrapes /metrics as JSON and asserts the two invariants
// the acceptance criteria name: the latency histogram observed every
// request, and the product-cache counters sum to the request count.
func verifyMetrics(client *http.Client, base string, total int) (mismatches int, err error) {
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, fmt.Errorf("metrics scrape: %w", err)
	}
	value := func(name string) float64 {
		if m := snap.Find(name); m != nil {
			return m.Value
		}
		return -1
	}

	hist := snap.Find("sqlserved_parse_latency_seconds")
	if hist == nil || hist.Count != uint64(total) {
		got := uint64(0)
		if hist != nil {
			got = hist.Count
		}
		fmt.Printf("telemetry MISMATCH: latency histogram count = %d, want %d\n", got, total)
		mismatches++
	} else {
		fmt.Printf("telemetry: latency histogram count = %d, p50 %.0fµs, p95 %.0fµs, p99 %.0fµs\n",
			hist.Count, hist.P50*1e6, hist.P95*1e6, hist.P99*1e6)
	}

	hits := value("sqlspl_product_cache_hits_total")
	misses := value("sqlspl_product_cache_misses_total")
	shared := value("sqlspl_product_cache_shared_total")
	if sum := hits + misses + shared; sum != float64(total) {
		fmt.Printf("telemetry MISMATCH: cache hits(%.0f)+misses(%.0f)+shared(%.0f) = %.0f, want %d\n",
			hits, misses, shared, sum, total)
		mismatches++
	} else {
		fmt.Printf("telemetry: cache hits %.0f + misses %.0f + coalesced %.0f = %d requests\n",
			hits, misses, shared, total)
	}
	if reqs := value("sqlserved_parse_requests_total"); reqs != float64(total) {
		fmt.Printf("telemetry MISMATCH: parse_requests_total = %.0f, want %d\n", reqs, total)
		mismatches++
	}
	return mismatches, nil
}

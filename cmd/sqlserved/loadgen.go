// loadgen.go is the end-to-end serving benchmark: it starts a private
// sqlserved instance (fresh catalog, fresh registry — so /metrics reflects
// exactly this run), drives it over real HTTP with the deterministic
// workloads from internal/workload, and prints a per-dialect
// throughput/latency table. It then cross-checks the server's own
// telemetry against the client's request count: the latency histogram must
// have observed every request, and the product-cache hit/miss/coalesce
// counters must sum to the request count (every request resolves the
// catalog exactly once). Any request error or telemetry mismatch makes the
// run fail — this is the acceptance gate, not just a benchmark.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlspl/internal/product"
	"sqlspl/internal/server"
	"sqlspl/internal/sql2003"
	"sqlspl/internal/telemetry"
	"sqlspl/internal/workload"
)

type loadgenConfig struct {
	total        int
	dialects     []string
	concurrency  int
	want         string
	seed         uint64
	timeout      time.Duration
	hot          int // >0: restrict each dialect's pool to this many distinct statements
	streamMB     int // >0: stream mode — each request POSTs ≥ this many MB to /v1/stream
	memCeilingMB int // >0: fail if peak heap exceeds this during the run
}

// buildPools pre-generates the traffic: one deterministic pool per dialect,
// cycled by request index. With cfg.hot the pool shrinks to a hot set, so
// after one cold pass every request is a verdict-cache hit.
func buildPools(cfg loadgenConfig, defaultSize int) (map[string][]string, error) {
	poolSize := defaultSize
	if poolSize > 2000 {
		poolSize = 2000 // cycle a bounded pool; determinism is per-seed anyway
	}
	if cfg.hot > 0 && cfg.hot < poolSize {
		poolSize = cfg.hot
	}
	pool := map[string][]string{}
	for i, d := range cfg.dialects {
		queries, ok := workload.ForDialect(d, cfg.seed+uint64(i), poolSize)
		if !ok {
			return nil, fmt.Errorf("loadgen: no workload for dialect %q", d)
		}
		pool[d] = queries
	}
	return pool, nil
}

// runLoadgen drives the benchmark and returns an error on any failed
// request or telemetry mismatch.
func runLoadgen(cfg loadgenConfig) error {
	if cfg.total < 1 {
		return fmt.Errorf("loadgen: -n must be positive")
	}
	if len(cfg.dialects) == 0 {
		return fmt.Errorf("loadgen: no dialects")
	}
	if cfg.concurrency < 1 {
		cfg.concurrency = 1
	}
	if cfg.streamMB > 0 {
		return runStreamLoadgen(cfg)
	}
	if !server.ValidWant(cfg.want) {
		return fmt.Errorf("loadgen: unknown want %q", cfg.want)
	}

	// Request i targets dialect i%len — round-robin, so every dialect's
	// parser serves interleaved traffic, the serving shape the catalog
	// exists for.
	pool, err := buildPools(cfg, cfg.total/len(cfg.dialects)+1)
	if err != nil {
		return err
	}

	// Private server: its catalog and registry see only this run.
	s := server.New(server.Config{
		Catalog:        product.NewCatalog(sql2003.MustModel(), sql2003.Registry{}),
		Registry:       telemetry.NewRegistry(),
		MaxInFlight:    2 * cfg.concurrency, // never shed our own load
		RequestTimeout: cfg.timeout,
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	base := "http://" + addr
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.concurrency * 2,
		MaxIdleConnsPerHost: cfg.concurrency * 2,
	}}
	defer client.CloseIdleConnections()
	if err := waitReady(client, base, 10*time.Second); err != nil {
		return err
	}

	hotNote := ""
	if cfg.hot > 0 {
		hotNote = fmt.Sprintf(", hot set %d", cfg.hot)
	}
	fmt.Printf("loadgen: %d requests, dialects [%s], concurrency %d, want %s, seed %d%s\n",
		cfg.total, strings.Join(cfg.dialects, " "), cfg.concurrency, cfg.want, cfg.seed, hotNote)

	sampleMem := startMemSampler()

	// Fire. Latencies land in a preallocated per-request slice (workers
	// write disjoint indices; no lock), errors in a bounded sample.
	latencies := make([]time.Duration, cfg.total)
	failed := make([]bool, cfg.total)
	var errCount atomic.Uint64
	var errSample sync.Map
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.total {
					return
				}
				d := cfg.dialects[i%len(cfg.dialects)]
				q := pool[d][(i/len(cfg.dialects))%len(pool[d])]
				t0 := time.Now()
				err := postParse(client, base, server.ParseRequest{Dialect: d, SQL: q, Want: cfg.want})
				latencies[i] = time.Since(t0)
				if err != nil {
					failed[i] = true
					errCount.Add(1)
					errSample.LoadOrStore(fmt.Sprintf("%s: %v", d, err), true)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	peak := sampleMem()

	printTable(cfg, latencies, failed, elapsed)
	errs := int(errCount.Load())
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d/%d requests failed; sample:\n", errs, cfg.total)
		shown := 0
		errSample.Range(func(k, _ any) bool {
			fmt.Fprintf(os.Stderr, "  %s\n", k)
			shown++
			return shown < 5
		})
	}

	// Probe pass: one want=ast and one want=analysis parse plus a canonical
	// and a minified format per dialect, with fixed inputs whose outputs are
	// known — exercising the query-intelligence surface end to end on every
	// loadgen run and folding the requests into the telemetry cross-check.
	probeParse, probeFormat := 0, 0
	for _, d := range cfg.dialects {
		for _, w := range []string{server.WantAST, server.WantAnalysis} {
			if err := postParse(client, base, server.ParseRequest{Dialect: d, SQL: "SELECT a FROM t", Want: w}); err != nil {
				return fmt.Errorf("loadgen: probe want=%s dialect %s: %w", w, d, err)
			}
			probeParse++
		}
		for _, minify := range []bool{false, true} {
			got, err := postFormat(client, base, server.FormatRequest{Dialect: d, SQL: "select   a  from t", Minify: minify})
			if err != nil {
				return fmt.Errorf("loadgen: probe format dialect %s: %w", d, err)
			}
			if got != "SELECT a FROM t" { // every inter-word space is load-bearing: minified == canonical here
				return fmt.Errorf("loadgen: probe format dialect %s: got %q", d, got)
			}
			probeFormat++
		}
	}
	fmt.Printf("loadgen: probes OK — %d ast/analysis parses, %d formats\n", probeParse, probeFormat)

	// Only want=verdict rides the verdict cache; every such request is
	// exactly one lookup, and misses cannot exceed the distinct statements
	// driven (the pools fit the cache, so nothing evicts mid-run). The
	// probes above ride the parse histogram too.
	expect := metricsExpect{
		parseReqs:       cfg.total + probeParse,
		formatReqs:      probeFormat,
		latencyObserved: cfg.total + probeParse + probeFormat,
		catalogResolves: cfg.total + probeParse + probeFormat,
		verdictLookups:  -1,
	}
	if cfg.want == server.WantVerdict {
		expect.verdictLookups = int64(cfg.total)
		for _, d := range cfg.dialects {
			expect.verdictDistinct += int64(len(pool[d]))
		}
	}
	mismatches, err := verifyMetrics(client, base, expect)
	if err != nil {
		return err
	}
	if err := checkPeakHeap(peak, cfg.memCeilingMB); err != nil {
		return err
	}
	if errs > 0 || mismatches > 0 {
		return fmt.Errorf("loadgen: %d request errors, %d telemetry mismatches", errs, mismatches)
	}
	fmt.Printf("loadgen: OK — %d requests, zero errors, telemetry consistent\n", cfg.total)
	return nil
}

// scriptGen synthesizes a ';'-separated SQL script of at least target bytes
// by cycling a statement pool — the streaming request body. It implements
// io.Reader so the script is never materialized: the client chunks it onto
// the wire as the server consumes it.
type scriptGen struct {
	pool    []string
	target  int64
	written int64
	stmts   int64
	pending string
	i       int
}

func (g *scriptGen) Read(p []byte) (int, error) {
	if g.pending == "" {
		if g.written >= g.target {
			return 0, io.EOF
		}
		g.pending = g.pool[g.i%len(g.pool)] + ";\n"
		g.i++
		g.written += int64(len(g.pending))
		g.stmts++
	}
	n := copy(p, g.pending)
	g.pending = g.pending[n:]
	return n, nil
}

// runStreamLoadgen is loadgen's streaming mode: each request POSTs a
// synthesized multi-MB script to /v1/stream and consumes the NDJSON
// response incrementally, verifying the summary trailer accounts for every
// generated statement with zero rejections. A heap sampler runs throughout
// — the point of the mode is that peak memory stays flat no matter how
// many MB stream through, and -mem-ceiling-mb turns that into a hard gate.
func runStreamLoadgen(cfg loadgenConfig) error {
	pool, err := buildPools(cfg, 512)
	if err != nil {
		return err
	}

	s := server.New(server.Config{
		Catalog:        product.NewCatalog(sql2003.MustModel(), sql2003.Registry{}),
		Registry:       telemetry.NewRegistry(),
		MaxInFlight:    2 * cfg.concurrency,
		RequestTimeout: cfg.timeout,
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	base := "http://" + addr
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.concurrency * 2,
		MaxIdleConnsPerHost: cfg.concurrency * 2,
	}}
	defer client.CloseIdleConnections()
	if err := waitReady(client, base, 10*time.Second); err != nil {
		return err
	}

	fmt.Printf("loadgen: %d stream requests × ≥%d MB, dialects [%s], concurrency %d, seed %d\n",
		cfg.total, cfg.streamMB, strings.Join(cfg.dialects, " "), cfg.concurrency, cfg.seed)

	sampleMem := startMemSampler()
	var (
		totalStatements atomic.Int64
		totalBytes      atomic.Int64
		errCount        atomic.Uint64
		errSample       sync.Map
		next            atomic.Int64
		wg              sync.WaitGroup
	)
	workers := cfg.concurrency
	if workers > cfg.total {
		workers = cfg.total
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.total {
					return
				}
				d := cfg.dialects[i%len(cfg.dialects)]
				gen := &scriptGen{pool: pool[d], target: int64(cfg.streamMB) << 20}
				stmts, err := postStream(client, base, d, gen)
				totalStatements.Add(stmts)
				totalBytes.Add(gen.written)
				if err != nil {
					errCount.Add(1)
					errSample.LoadOrStore(fmt.Sprintf("%s: %v", d, err), true)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	peak := sampleMem()

	mb := float64(totalBytes.Load()) / (1 << 20)
	fmt.Printf("stream: %d requests, %.0f MB, %d statements in %s (%.0f MB/s, %.0f stmt/s), peak heap %.1f MB\n",
		cfg.total, mb, totalStatements.Load(), elapsed.Round(time.Millisecond),
		mb/elapsed.Seconds(), float64(totalStatements.Load())/elapsed.Seconds(), float64(peak)/(1<<20))

	errs := int(errCount.Load())
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d/%d stream requests failed; sample:\n", errs, cfg.total)
		shown := 0
		errSample.Range(func(k, _ any) bool {
			fmt.Fprintf(os.Stderr, "  %s\n", k)
			shown++
			return shown < 5
		})
	}

	expect := metricsExpect{
		catalogResolves:  cfg.total,
		streamReqs:       cfg.total,
		streamStatements: totalStatements.Load(),
		verdictLookups:   totalStatements.Load(),
	}
	for _, d := range cfg.dialects {
		expect.verdictDistinct += int64(len(pool[d]))
	}
	mismatches, err := verifyMetrics(client, base, expect)
	if err != nil {
		return err
	}
	if err := checkPeakHeap(peak, cfg.memCeilingMB); err != nil {
		return err
	}
	if errs > 0 || mismatches > 0 {
		return fmt.Errorf("loadgen: %d request errors, %d telemetry mismatches", errs, mismatches)
	}
	fmt.Printf("loadgen: OK — %d stream requests, %d statements, zero errors, telemetry consistent\n",
		cfg.total, totalStatements.Load())
	return nil
}

// postStream issues one streaming request and consumes the NDJSON response
// line by line, never holding more than one record. It returns the number
// of statements the generator emitted and an error unless the summary
// trailer accounts for exactly that many statements, all accepted.
func postStream(client *http.Client, base string, dialect string, gen *scriptGen) (int64, error) {
	resp, err := client.Post(base+"/v1/stream?dialect="+dialect, "application/sql", gen)
	if err != nil {
		return gen.stmts, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return gen.stmts, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(string(data), 200))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	records := int64(0)
	var last string
	for sc.Scan() {
		records++
		last = sc.Text()
	}
	if err := sc.Err(); err != nil {
		return gen.stmts, fmt.Errorf("reading stream response: %w", err)
	}
	var sum server.StreamSummary
	if err := json.Unmarshal([]byte(last), &sum); err != nil || !sum.Summary {
		return gen.stmts, fmt.Errorf("stream response did not end in a summary trailer: %q", truncate(last, 200))
	}
	if sum.Error != "" {
		return gen.stmts, fmt.Errorf("stream aborted: %s", sum.Error)
	}
	if int64(sum.Statements) != gen.stmts || records-1 != gen.stmts {
		return gen.stmts, fmt.Errorf("stream answered %d statements (%d records) for %d sent",
			sum.Statements, records-1, gen.stmts)
	}
	if sum.Rejected != 0 {
		return gen.stmts, fmt.Errorf("stream rejected %d statements", sum.Rejected)
	}
	return gen.stmts, nil
}

// startMemSampler watches the heap until stopped and reports the peak
// HeapAlloc observed, in bytes. 25ms sampling is coarse, but the streaming
// scanner's window is steady-state — a leak proportional to input size
// cannot hide between samples.
func startMemSampler() (stop func() uint64) {
	var peak atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
	return func() uint64 {
		close(done)
		wg.Wait()
		return peak.Load()
	}
}

// checkPeakHeap turns the sampled peak into a hard gate when a ceiling was
// requested. The peak covers client and in-process server together — an
// over-ceiling reading on either side fails the soak.
func checkPeakHeap(peak uint64, ceilingMB int) error {
	if ceilingMB <= 0 {
		return nil
	}
	if peak > uint64(ceilingMB)<<20 {
		return fmt.Errorf("loadgen: peak heap %.1f MB exceeds ceiling %d MB", float64(peak)/(1<<20), ceilingMB)
	}
	fmt.Printf("loadgen: peak heap %.1f MB within ceiling %d MB\n", float64(peak)/(1<<20), ceilingMB)
	return nil
}

// postParse issues one parse request; any transport failure, non-200
// status or ok=false response is an error.
func postParse(client *http.Client, base string, req server.ParseRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/parse", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, truncate(string(data), 200))
	}
	var pr server.ParseResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		return err
	}
	if !pr.OK {
		return fmt.Errorf("parse rejected: %s", truncate(pr.Error.Message, 200))
	}
	return nil
}

// postFormat issues one format request and returns the formatted SQL; any
// transport failure, non-200 status or ok=false response is an error.
func postFormat(client *http.Client, base string, req server.FormatRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := client.Post(base+"/v1/format", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, truncate(string(data), 200))
	}
	var fr server.FormatResponse
	if err := json.Unmarshal(data, &fr); err != nil {
		return "", err
	}
	if !fr.OK {
		return "", fmt.Errorf("format refused: %s", truncate(fr.Error.Message, 200))
	}
	return fr.SQL, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// waitReady polls /readyz until 200 or the deadline.
func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %s", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// printTable renders the per-dialect and total throughput/latency rows.
func printTable(cfg loadgenConfig, latencies []time.Duration, failed []bool, elapsed time.Duration) {
	fmt.Printf("%-11s %9s %7s %11s %9s %9s %9s\n",
		"DIALECT", "REQUESTS", "ERRORS", "QPS", "P50", "P95", "P99")
	row := func(name string, lats []time.Duration, errs int, wall time.Duration) {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) time.Duration {
			if len(lats) == 0 {
				return 0
			}
			i := int(p * float64(len(lats)))
			if i >= len(lats) {
				i = len(lats) - 1
			}
			return lats[i]
		}
		qps := float64(len(lats)) / wall.Seconds()
		fmt.Printf("%-11s %9d %7d %11.0f %9s %9s %9s\n", name, len(lats), errs, qps,
			q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond), q(0.99).Round(time.Microsecond))
	}
	for di, d := range cfg.dialects {
		var lats []time.Duration
		errs := 0
		for i := di; i < cfg.total; i += len(cfg.dialects) {
			lats = append(lats, latencies[i])
			if failed[i] {
				errs++
			}
		}
		// Per-dialect QPS shares the wall clock: dialects are interleaved,
		// so each row reports its share of the total rate.
		row(d, lats, errs, elapsed)
	}
	all := make([]time.Duration, len(latencies))
	copy(all, latencies)
	totalErrs := 0
	for _, f := range failed {
		if f {
			totalErrs++
		}
	}
	row("TOTAL", all, totalErrs, elapsed)
}

// metricsExpect is what a loadgen run expects /metrics to show afterwards.
// verdictLookups < 0 skips the verdict-cache assertions (non-verdict wants
// never touch that cache).
type metricsExpect struct {
	parseReqs        int   // /v1/parse requests (requests_total)
	formatReqs       int   // /v1/format requests (requests_total; errors must be zero)
	latencyObserved  int   // latency histogram count (parse + format requests)
	catalogResolves  int   // product-cache hits+misses+shared must sum to this
	streamReqs       int   // /v1/stream requests
	streamStatements int64 // statements answered across all streams
	verdictLookups   int64 // verdict-cache hits+misses+shared must sum to this
	verdictDistinct  int64 // ... and misses must not exceed this
}

// verifyMetrics scrapes /metrics as JSON and asserts the loadgen
// invariants: the latency histogram observed every parse request, the
// product-cache counters sum to the resolve count (every request resolves
// the catalog exactly once), the stream counters account for every
// streamed request and statement, and — on the verdict path — the verdict
// cache saw exactly one lookup per statement with misses bounded by the
// distinct statements driven.
func verifyMetrics(client *http.Client, base string, expect metricsExpect) (mismatches int, err error) {
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, fmt.Errorf("metrics scrape: %w", err)
	}
	value := func(name string) float64 {
		if m := snap.Find(name); m != nil {
			return m.Value
		}
		return -1
	}

	hist := snap.Find("sqlserved_parse_latency_seconds")
	histCount := uint64(0)
	if hist != nil {
		histCount = hist.Count
	}
	if histCount != uint64(expect.latencyObserved) {
		fmt.Printf("telemetry MISMATCH: latency histogram count = %d, want %d\n", histCount, expect.latencyObserved)
		mismatches++
	} else if hist != nil && histCount > 0 {
		fmt.Printf("telemetry: latency histogram count = %d, p50 %.0fµs, p95 %.0fµs, p99 %.0fµs\n",
			hist.Count, hist.P50*1e6, hist.P95*1e6, hist.P99*1e6)
	}

	hits := value("sqlspl_product_cache_hits_total")
	misses := value("sqlspl_product_cache_misses_total")
	shared := value("sqlspl_product_cache_shared_total")
	if sum := hits + misses + shared; sum != float64(expect.catalogResolves) {
		fmt.Printf("telemetry MISMATCH: cache hits(%.0f)+misses(%.0f)+shared(%.0f) = %.0f, want %d\n",
			hits, misses, shared, sum, expect.catalogResolves)
		mismatches++
	} else {
		fmt.Printf("telemetry: cache hits %.0f + misses %.0f + coalesced %.0f = %d requests\n",
			hits, misses, shared, expect.catalogResolves)
	}
	if expect.parseReqs > 0 {
		if reqs := value("sqlserved_parse_requests_total"); reqs != float64(expect.parseReqs) {
			fmt.Printf("telemetry MISMATCH: parse_requests_total = %.0f, want %d\n", reqs, expect.parseReqs)
			mismatches++
		}
	}
	if expect.formatReqs > 0 {
		if reqs := value("sqlserved_format_requests_total"); reqs != float64(expect.formatReqs) {
			fmt.Printf("telemetry MISMATCH: format_requests_total = %.0f, want %d\n", reqs, expect.formatReqs)
			mismatches++
		}
		if errs := value("sqlserved_format_errors_total"); errs != 0 {
			fmt.Printf("telemetry MISMATCH: format_errors_total = %.0f, want 0\n", errs)
			mismatches++
		}
	}
	if expect.streamReqs > 0 {
		if reqs := value("sqlserved_stream_requests_total"); reqs != float64(expect.streamReqs) {
			fmt.Printf("telemetry MISMATCH: stream_requests_total = %.0f, want %d\n", reqs, expect.streamReqs)
			mismatches++
		}
		if sts := value("sqlserved_stream_statements_total"); sts != float64(expect.streamStatements) {
			fmt.Printf("telemetry MISMATCH: stream_statements_total = %.0f, want %d\n", sts, expect.streamStatements)
			mismatches++
		}
	}
	if expect.verdictLookups >= 0 {
		vh := value("sqlspl_verdict_cache_hits_total")
		vm := value("sqlspl_verdict_cache_misses_total")
		vs := value("sqlspl_verdict_cache_shared_total")
		if sum := vh + vm + vs; sum != float64(expect.verdictLookups) {
			fmt.Printf("telemetry MISMATCH: verdict cache hits(%.0f)+misses(%.0f)+shared(%.0f) = %.0f, want %d\n",
				vh, vm, vs, sum, expect.verdictLookups)
			mismatches++
		} else if vm > float64(expect.verdictDistinct) {
			fmt.Printf("telemetry MISMATCH: verdict cache misses %.0f exceed the %d distinct statements driven\n",
				vm, expect.verdictDistinct)
			mismatches++
		} else {
			fmt.Printf("telemetry: verdict cache hits %.0f + misses %.0f + coalesced %.0f = %d lookups (≤%d distinct)\n",
				vh, vm, vs, expect.verdictLookups, expect.verdictDistinct)
		}
	}
	return mismatches, nil
}

package main

// Interactive mode implements the workflow the paper describes as work in
// progress: "Currently we are creating an implementation model and a user
// interface presenting various SQL statements and their features. When a
// user selects different features, the required parser is created by
// composing these features."

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sqlspl/internal/core"
	"sqlspl/internal/dialect"
	"sqlspl/internal/feature"
	"sqlspl/internal/product"
	"sqlspl/internal/sql2003"
)

const interactiveHelp = `commands:
  select <feature>...     add features to the selection
  deselect <feature>...   remove features
  dialect <name>          replace the selection with a preset dialect
  show                    print the current selection
  diagram <name>          print one feature diagram
  build                   compose the selection and create the parser
  check <sql>             parse SQL under the current product
  stats                   print product size statistics
  reset                   clear the selection
  help                    this text
  quit                    leave
`

// runInteractive drives the select-features/create-parser loop over the
// given streams. It returns the first I/O error, or nil at quit/EOF.
func runInteractive(in io.Reader, out io.Writer) error {
	m := sql2003.MustModel()
	cfg := feature.NewConfig()
	// Builds resolve through the product catalog: re-building an unchanged
	// selection (or returning to an earlier one) is a cache hit, which makes
	// the paper's select-features/create-parser loop instant after the first
	// composition of each selection. (Bound before the product variable
	// below shadows the package name.)
	cat := product.Default()
	var product *core.Product

	build := func() {
		before := cat.Stats()
		p, err := cat.Get(cfg, core.Options{Product: "interactive"})
		if err != nil {
			fmt.Fprintf(out, "build failed: %v\n", err)
			return
		}
		product = p
		note := ""
		if cat.Stats().Hits > before.Hits {
			note = " (catalog hit: reused earlier build)"
		}
		fmt.Fprintf(out, "built: %d features -> %d productions, %d keywords%s\n",
			p.Config.Len(), p.Grammar.Len(), len(p.Tokens.Keywords()), note)
	}

	fmt.Fprint(out, "sqlfpc interactive — type 'help' for commands\n")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Fprint(out, interactiveHelp)
		case "select":
			for _, f := range strings.Fields(rest) {
				if m.Feature(f) == nil {
					fmt.Fprintf(out, "unknown feature %q\n", f)
					continue
				}
				cfg.Select(f)
			}
			fmt.Fprintf(out, "%d features selected\n", cfg.Len())
			product = nil
		case "deselect":
			cfg.Deselect(strings.Fields(rest)...)
			fmt.Fprintf(out, "%d features selected\n", cfg.Len())
			product = nil
		case "dialect":
			feats, err := dialect.Features(dialect.Name(rest))
			if err != nil {
				fmt.Fprintln(out, err)
				continue
			}
			cfg = feature.NewConfig(feats...)
			fmt.Fprintf(out, "%d features selected from preset %s\n", cfg.Len(), rest)
			product = nil
		case "show":
			fmt.Fprintln(out, cfg)
		case "diagram":
			d := m.DiagramOf(rest)
			if d == nil {
				fmt.Fprintf(out, "no diagram %q\n", rest)
				continue
			}
			d.WalkFeatures(func(f *feature.Feature) {
				mark := " "
				if cfg.Has(f.Name) {
					mark = "*"
				}
				fmt.Fprintf(out, " %s %s\n", mark, f.Name)
			})
		case "build":
			build()
		case "stats":
			if product == nil {
				build()
			}
			if product != nil {
				s := product.Stats()
				fmt.Fprintf(out, "productions=%d tokens=%d keywords=%d erased=%d\n",
					s.Productions, s.Tokens, s.Keywords, len(product.Erased))
			}
		case "check":
			if product == nil {
				build()
			}
			if product == nil {
				continue
			}
			if tree, err := product.Parse(rest); err != nil {
				fmt.Fprintf(out, "REJECT: %v\n", err)
			} else {
				fmt.Fprintf(out, "ACCEPT (%d tokens)\n", len(tree.Leaves()))
			}
		case "reset":
			cfg = feature.NewConfig()
			product = nil
			fmt.Fprintln(out, "selection cleared")
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", cmd)
		}
	}
}

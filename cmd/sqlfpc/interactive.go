package main

// Interactive mode implements the workflow the paper describes as work in
// progress: "Currently we are creating an implementation model and a user
// interface presenting various SQL statements and their features. When a
// user selects different features, the required parser is created by
// composing these features."

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"sqlspl/internal/configure"
	"sqlspl/internal/core"
	"sqlspl/internal/dialect"
	"sqlspl/internal/feature"
	"sqlspl/internal/product"
	"sqlspl/internal/sql2003"
)

const interactiveHelp = `commands:
  select <feature>...     add features to the selection
  deselect <feature>...   remove features
  forbid <feature>...     refuse features (the solver must avoid them)
  permit <feature>...     lift a refusal
  complete                let the solver extend the selection to a valid config
  dialect <name>          replace the selection with a preset dialect
  show                    print the current selection
  diagram <name>          print one feature diagram
  build                   compose the selection and create the parser
  check <sql>             parse SQL under the current product
  stats                   print product size statistics
  reset                   clear the selection
  help                    this text
  quit                    leave
`

// runInteractive drives the select-features/create-parser loop over the
// given streams. It returns the first I/O error, or nil at quit/EOF.
func runInteractive(in io.Reader, out io.Writer) error {
	m := sql2003.MustModel()
	cfg := feature.NewConfig()
	// Builds resolve through the product catalog: re-building an unchanged
	// selection (or returning to an earlier one) is a cache hit, which makes
	// the paper's select-features/create-parser loop instant after the first
	// composition of each selection. (Bound before the product variable
	// below shadows the package name.)
	cat := product.Default()
	var product *core.Product

	// The configuration solver turns an invalid selection from a dead end
	// into a dialogue: instead of the bare validation error, an infeasible
	// selection gets its minimal conflict set and a suggested relaxation,
	// and an incomplete one gets the features 'complete' would add.
	sol := configure.New(cat.Model())
	forbidden := map[string]bool{}
	forbidList := func() []string {
		out := make([]string, 0, len(forbidden))
		for f := range forbidden {
			out = append(out, f)
		}
		sort.Strings(out)
		return out
	}
	printConflict := func(c *configure.Conflict) {
		fmt.Fprintf(out, "infeasible: conflicting decisions: %s\n", strings.Join(c.Decisions, ", "))
		for _, con := range c.Constraints {
			fmt.Fprintf(out, "  violates: %s\n", con)
		}
		for _, ch := range c.Chains {
			fmt.Fprintf(out, "  because: %s\n", ch)
		}
		if c.Relaxation != "" {
			fmt.Fprintf(out, "  suggestion: %s\n", c.Relaxation)
		}
	}
	// explainFailure runs the solver over the current decisions after a
	// failed build and narrates the answer.
	explainFailure := func(buildErr error) {
		comp, conflict, err := sol.Complete(configure.Request{Require: cfg.Names(), Forbid: forbidList()})
		switch {
		case err != nil:
			fmt.Fprintf(out, "build failed: %v\n", buildErr)
		case conflict != nil:
			printConflict(conflict)
		case len(comp.Added) > 0:
			fmt.Fprintf(out, "build failed: %v\n", buildErr)
			fmt.Fprintf(out, "the selection is incomplete, not contradictory — 'complete' would add %d feature(s): %s\n",
				len(comp.Added), strings.Join(comp.Added, ", "))
		default:
			fmt.Fprintf(out, "build failed: %v\n", buildErr)
		}
	}

	build := func() {
		before := cat.Stats()
		p, err := cat.Get(cfg, core.Options{Product: "interactive"})
		if err != nil {
			explainFailure(err)
			return
		}
		product = p
		note := ""
		if cat.Stats().Hits > before.Hits {
			note = " (catalog hit: reused earlier build)"
		}
		fmt.Fprintf(out, "built: %d features -> %d productions, %d keywords%s\n",
			p.Config.Len(), p.Grammar.Len(), len(p.Tokens.Keywords()), note)
		// Closure may pull in a refused feature via a requires edge; the
		// build itself cannot honor forbids, so surface the collision.
		for _, f := range forbidList() {
			if p.Config.Has(f) {
				fmt.Fprintf(out, "warning: forbidden feature %q was pulled in by closure; try 'complete' to see the conflict\n", f)
			}
		}
	}

	fmt.Fprint(out, "sqlfpc interactive — type 'help' for commands\n")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Fprint(out, interactiveHelp)
		case "select":
			for _, f := range strings.Fields(rest) {
				if m.Feature(f) == nil {
					fmt.Fprintf(out, "unknown feature %q\n", f)
					continue
				}
				if forbidden[f] {
					fmt.Fprintf(out, "%q is forbidden; 'permit %s' first\n", f, f)
					continue
				}
				cfg.Select(f)
			}
			fmt.Fprintf(out, "%d features selected\n", cfg.Len())
			product = nil
		case "deselect":
			cfg.Deselect(strings.Fields(rest)...)
			fmt.Fprintf(out, "%d features selected\n", cfg.Len())
			product = nil
		case "forbid":
			for _, f := range strings.Fields(rest) {
				if m.Feature(f) == nil {
					fmt.Fprintf(out, "unknown feature %q\n", f)
					continue
				}
				forbidden[f] = true
				if cfg.Has(f) {
					cfg.Deselect(f)
					fmt.Fprintf(out, "deselected %q\n", f)
				}
			}
			fmt.Fprintf(out, "%d features forbidden\n", len(forbidden))
			product = nil
		case "permit":
			for _, f := range strings.Fields(rest) {
				delete(forbidden, f)
			}
			fmt.Fprintf(out, "%d features forbidden\n", len(forbidden))
		case "complete":
			comp, conflict, err := sol.Complete(configure.Request{Require: cfg.Names(), Forbid: forbidList()})
			switch {
			case err != nil:
				fmt.Fprintln(out, err)
			case conflict != nil:
				printConflict(conflict)
			default:
				cfg = comp.Config
				product = nil
				if len(comp.Added) == 0 {
					fmt.Fprintln(out, "selection is already a valid configuration")
				} else {
					fmt.Fprintf(out, "solver added %d feature(s): %s\n",
						len(comp.Added), strings.Join(comp.Added, ", "))
				}
				fmt.Fprintf(out, "%d features selected\n", cfg.Len())
			}
		case "dialect":
			feats, err := dialect.Features(dialect.Name(rest))
			if err != nil {
				fmt.Fprintln(out, err)
				continue
			}
			cfg = feature.NewConfig(feats...)
			fmt.Fprintf(out, "%d features selected from preset %s\n", cfg.Len(), rest)
			product = nil
		case "show":
			fmt.Fprintln(out, cfg)
			if len(forbidden) > 0 {
				fmt.Fprintf(out, "forbidden: %s\n", strings.Join(forbidList(), ", "))
			}
		case "diagram":
			d := m.DiagramOf(rest)
			if d == nil {
				fmt.Fprintf(out, "no diagram %q\n", rest)
				continue
			}
			d.WalkFeatures(func(f *feature.Feature) {
				mark := " "
				if cfg.Has(f.Name) {
					mark = "*"
				}
				fmt.Fprintf(out, " %s %s\n", mark, f.Name)
			})
		case "build":
			build()
		case "stats":
			if product == nil {
				build()
			}
			if product != nil {
				s := product.Stats()
				fmt.Fprintf(out, "productions=%d tokens=%d keywords=%d erased=%d\n",
					s.Productions, s.Tokens, s.Keywords, len(product.Erased))
			}
		case "check":
			if product == nil {
				build()
			}
			if product == nil {
				continue
			}
			if tree, err := product.Parse(rest); err != nil {
				fmt.Fprintf(out, "REJECT: %v\n", err)
			} else {
				fmt.Fprintf(out, "ACCEPT (%d tokens)\n", len(tree.Leaves()))
			}
		case "reset":
			cfg = feature.NewConfig()
			forbidden = map[string]bool{}
			product = nil
			fmt.Fprintln(out, "selection cleared")
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", cmd)
		}
	}
}

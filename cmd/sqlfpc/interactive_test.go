package main

import (
	"strings"
	"testing"
)

// drive runs one scripted interactive session and returns the transcript.
func drive(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := runInteractive(strings.NewReader(script), &out); err != nil {
		t.Fatalf("session error: %v\n%s", err, out.String())
	}
	return out.String()
}

// An infeasible selection answers with the solver's minimal conflict set
// and a suggested relaxation, not a bare validation error.
func TestInteractiveConflictExplanation(t *testing.T) {
	got := drive(t, "select where\nforbid search_condition\ncomplete\nquit\n")
	for _, want := range []string{
		"conflicting decisions: require:where, forbid:search_condition",
		"violates: where requires search_condition",
		"suggestion: drop \"forbid:search_condition\"",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("transcript missing %q:\n%s", want, got)
		}
	}
}

// complete extends a feasible partial selection to a buildable config.
func TestInteractiveComplete(t *testing.T) {
	got := drive(t, "select query_specification\ncomplete\nbuild\ncheck SELECT * FROM t\nquit\n")
	if !strings.Contains(got, "solver added") {
		t.Errorf("complete did not report added features:\n%s", got)
	}
	if !strings.Contains(got, "built:") {
		t.Errorf("completed selection did not build:\n%s", got)
	}
	if !strings.Contains(got, "ACCEPT") {
		t.Errorf("completed product rejected the probe query:\n%s", got)
	}
}

// A failed build of an incomplete (but feasible) selection points at
// 'complete' with the features it would add.
func TestInteractiveBuildFailureHint(t *testing.T) {
	got := drive(t, "select comparison\nbuild\nquit\n")
	if !strings.Contains(got, "build failed") {
		t.Fatalf("expected a build failure:\n%s", got)
	}
	if !strings.Contains(got, "'complete' would add") {
		t.Errorf("failure not narrated via the solver:\n%s", got)
	}
}

// forbid deselects and blocks re-selection until permitted.
func TestInteractiveForbidPermit(t *testing.T) {
	got := drive(t, "select window\nforbid window\nselect window\npermit window\nselect window\nquit\n")
	if !strings.Contains(got, `deselected "window"`) {
		t.Errorf("forbid did not deselect:\n%s", got)
	}
	if !strings.Contains(got, `"window" is forbidden`) {
		t.Errorf("select of a forbidden feature not refused:\n%s", got)
	}
}

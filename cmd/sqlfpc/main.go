// Command sqlfpc is the SQL feature-parser composer: the paper's
// user-facing workflow ("When a user selects different features, the
// required parser is created by composing these features") as a CLI.
//
// Usage:
//
//	sqlfpc -list                              # list features with docs
//	sqlfpc -dialect tinysql -grammar          # print a preset's composed grammar
//	sqlfpc -features query_specification,...  # compose a custom selection
//	sqlfpc -dialect minimal -emit minsql      # generate Go parser source
//	sqlfpc -dialect scql -tokens              # print the composed token file
//	sqlfpc -dialect core -check 'SELECT 1 FROM t'  # test a query
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sqlspl/internal/codegen"
	"sqlspl/internal/core"
	"sqlspl/internal/dialect"
	"sqlspl/internal/feature"
	"sqlspl/internal/grammar"
	"sqlspl/internal/product"
	"sqlspl/internal/sql2003"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list all features of the SQL:2003 model")
		dialectN    = flag.String("dialect", "", "preset dialect: minimal|tinysql|scql|core|warehouse|full")
		features    = flag.String("features", "", "comma-separated feature selection (alternative to -dialect)")
		printG      = flag.Bool("grammar", false, "print the composed grammar")
		printT      = flag.Bool("tokens", false, "print the composed token file")
		printSeq    = flag.Bool("sequence", false, "print the composition sequence")
		printE      = flag.Bool("erased", false, "print erased optional slots")
		stats       = flag.Bool("stats", false, "print product size statistics")
		emit        = flag.String("emit", "", "generate Go parser source as the named package")
		check       = flag.String("check", "", "parse the given SQL under the product and report")
		conflicts   = flag.Bool("conflicts", false, "report LL(1) prediction conflicts of the composed grammar")
		trace       = flag.Bool("trace", false, "trace composition decisions to stderr")
		interactive = flag.Bool("interactive", false, "interactive feature-selection session (the paper's envisioned UI)")
	)
	flag.Parse()

	if *list {
		listFeatures()
		return
	}
	if *interactive {
		if err := runInteractive(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	cfg, name, err := selection(*dialectN, *features)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Product: name}
	if *trace {
		opts.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "compose: "+format+"\n", args...)
		}
	}
	// Resolve through the catalog: a preset selection shares the cached
	// build with everything else in the process. (Trace still fires — the
	// request that builds is the one that traces, and a fresh CLI process
	// always builds cold.)
	cat := product.Default()
	product, err := cat.Get(cfg, opts)
	if err != nil {
		fatal(err)
	}

	did := false
	if *printSeq {
		fmt.Println(strings.Join(product.Sequence, " -> "))
		did = true
	}
	if *printG {
		fmt.Print(grammar.Format(product.Grammar))
		did = true
	}
	if *printT {
		fmt.Print(product.Tokens.String())
		did = true
	}
	if *printE {
		for _, e := range product.Erased {
			fmt.Println(e)
		}
		did = true
	}
	if *stats {
		s := product.Stats()
		fmt.Printf("product        %s\n", product.Name)
		fmt.Printf("features       %d\n", s.Features)
		fmt.Printf("units          %d\n", s.Units)
		fmt.Printf("productions    %d\n", s.Productions)
		fmt.Printf("alternatives   %d\n", s.Grammar.Alternatives)
		fmt.Printf("symbols        %d\n", s.Grammar.Symbols)
		fmt.Printf("tokens         %d\n", s.Tokens)
		fmt.Printf("keywords       %d\n", s.Keywords)
		fmt.Printf("erased slots   %d\n", len(product.Erased))
		did = true
	}
	if *conflicts {
		an := grammar.Analyze(product.Grammar)
		cs := an.LL1Conflicts()
		fmt.Printf("%d productions need backtracking beyond LL(1) prediction:\n", len(cs))
		for _, c := range cs {
			fmt.Println(" ", c)
		}
		did = true
	}
	if *emit != "" {
		src, err := codegen.Generate(product.Grammar, product.Tokens, *emit)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(src)
		did = true
	}
	if *check != "" {
		tree, err := product.Parse(*check)
		if err != nil {
			fmt.Printf("REJECT: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ACCEPT")
		fmt.Print(tree.Dump())
		did = true
	}
	if !did {
		fmt.Printf("composed product %q: %d features -> %d units -> %d productions, %d tokens\n",
			product.Name, product.Config.Len(), len(product.Units),
			product.Grammar.Len(), product.Tokens.Len())
		fmt.Println("use -grammar, -tokens, -stats, -emit, -check, -sequence or -erased for output")
	}
}

func selection(dialectName, featureList string) (*feature.Config, string, error) {
	switch {
	case dialectName != "" && featureList != "":
		return nil, "", fmt.Errorf("use either -dialect or -features, not both")
	case dialectName != "":
		feats, err := dialect.Features(dialect.Name(dialectName))
		if err != nil {
			return nil, "", err
		}
		return feature.NewConfig(feats...), dialectName, nil
	case featureList != "":
		var feats []string
		for _, f := range strings.Split(featureList, ",") {
			if f = strings.TrimSpace(f); f != "" {
				feats = append(feats, f)
			}
		}
		return feature.NewConfig(feats...), "custom", nil
	}
	return nil, "", fmt.Errorf("select features with -dialect or -features (or use -list)")
}

func listFeatures() {
	m := sql2003.MustModel()
	for _, d := range m.Diagrams {
		fmt.Printf("%s — %s\n", d.Name, d.Doc)
		var walk func(f *feature.Feature, depth int)
		walk = func(f *feature.Feature, depth int) {
			marks := ""
			if f.Optional {
				marks += "?"
			}
			switch f.Group {
			case feature.Or:
				marks += " or-group"
			case feature.Alternative:
				marks += " alt-group"
			}
			if f.HasCardinality() {
				marks += " " + f.CardinalityString()
			}
			doc := ""
			if f.Doc != "" {
				doc = " — " + f.Doc
			}
			fmt.Printf("  %s%s%s%s\n", strings.Repeat("  ", depth), f.Name, marks, doc)
			kids := append([]*feature.Feature(nil), f.Children...)
			sort.SliceStable(kids, func(i, j int) bool { return false }) // keep declaration order
			for _, c := range kids {
				walk(c, depth+1)
			}
		}
		walk(d.Root, 1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlfpc:", err)
	os.Exit(1)
}

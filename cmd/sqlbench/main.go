// Command sqlbench drives the experiment harness and prints the series
// recorded in EXPERIMENTS.md. Each experiment can be run alone with -exp.
//
//	sqlbench             # run all experiments
//	sqlbench -exp E6     # grammar/parser size vs dialect
//	sqlbench -exp E7     # composition + generation cost vs dialect
//	sqlbench -exp E8     # parse throughput: products vs monolithic baseline
//	sqlbench -exp E9     # extension composability (sensor clauses)
//	sqlbench -exp E11    # engine comparison: interpreted vs generated per preset
//	sqlbench -exp E12    # verdict serving: cold vs cached-hit vs streamed
//	sqlbench -exp E11,E12 -json BENCH_parse.json   # the benchgate series
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sqlspl/internal/baseline"
	"sqlspl/internal/codegen"
	"sqlspl/internal/core"
	"sqlspl/internal/dialect"
	"sqlspl/internal/engine"
	"sqlspl/internal/feature"
	"sqlspl/internal/product"
	"sqlspl/internal/sql2003"
	"sqlspl/internal/stream"
	"sqlspl/internal/workload"

	// Link the pregenerated preset parsers so E11 benchmarks the real
	// serving configuration: presets promote to generated engines.
	_ "sqlspl/internal/engine/generated"
)

// experiments is the known experiment set, in run order. -exp is validated
// against it so a typo fails loudly instead of silently running nothing.
var experiments = []struct {
	name string
	f    func(int)
}{
	{"E6", e6Size},
	{"E7", e7Composition},
	{"E8", e8Throughput},
	{"E9", e9Extension},
	{"E11", e11Engines},
	{"E12", e12Verdicts},
}

func main() {
	var (
		exp  = flag.String("exp", "", "experiments to run, comma-separated: E6|E7|E8|E9|E11|E12 (default all)")
		iter = flag.Int("n", 2000, "queries per throughput measurement")
		jout = flag.String("json", "", "write the E8/E11/E12 benchmark series (ns/query, MB/s, allocs/query per workload/parser) to this file, e.g. BENCH_parse.json")
	)
	flag.Parse()
	jsonPath = *jout

	var selected []string
	if *exp != "" {
		names := make([]string, len(experiments))
		for i, e := range experiments {
			names[i] = e.name
		}
		for _, part := range strings.Split(*exp, ",") {
			part = strings.TrimSpace(part)
			known := false
			for _, name := range names {
				known = known || strings.EqualFold(part, name)
			}
			if !known {
				fmt.Fprintf(os.Stderr, "sqlbench: unknown experiment %q (valid: %s)\n",
					part, strings.Join(names, ", "))
				os.Exit(2)
			}
			selected = append(selected, part)
		}
	}
	runs := func(name string) bool {
		if len(selected) == 0 {
			return true
		}
		for _, s := range selected {
			if strings.EqualFold(s, name) {
				return true
			}
		}
		return false
	}
	for _, e := range experiments {
		if runs(e.name) {
			e.f(*iter)
			fmt.Println()
		}
	}
	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "sqlbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d benchmark rows to %s\n", len(benchRows), jsonPath)
	}
}

// benchRow is one machine-readable measurement of the E8/E11 series: one
// workload parsed by one parser (for E11, one preset's corpus parsed by
// one engine backend). allocs/bytes per query are measured with
// runtime.MemStats deltas around the timed loop, the same quantities
// go test -benchmem reports.
type benchRow struct {
	Workload       string  `json:"workload"`
	Parser         string  `json:"parser"`
	Queries        int     `json:"queries"`
	Accepted       int     `json:"accepted"`
	NsPerQuery     int64   `json:"ns_per_query"`
	QPS            float64 `json:"qps"`
	MBPerSec       float64 `json:"mb_per_sec"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
	BytesPerQuery  float64 `json:"bytes_per_query"`
	// E11 generated rows relate to their interpreted twin measured on the
	// same corpus: negative means the generated engine is faster /
	// allocates less. Absent on absolute rows.
	NsVsInterpretedPct  *float64 `json:"ns_vs_interpreted_pct,omitempty"`
	AllocsVsInterpreted *float64 `json:"allocs_vs_interpreted,omitempty"`
	// E12 cached-hit and streamed rows relate to the uncached verdict pass
	// over the same corpus: >1 means faster than a cold engine Check.
	SpeedupVsUncached *float64 `json:"speedup_vs_uncached,omitempty"`
}

// jsonPath, when set by -json, makes report() collect rows for the series
// file written at exit.
var (
	jsonPath  string
	benchRows []benchRow
)

func writeBenchJSON(path string) error {
	out := struct {
		GoVersion string     `json:"go_version"`
		Timestamp string     `json:"timestamp"`
		Rows      []benchRow `json:"rows"`
	}{
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Rows:      benchRows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// buildOrDie resolves a preset through the product catalog (dialect.Build):
// experiments that reuse a dialect share one cached build.
func buildOrDie(name dialect.Name) *core.Product {
	p, err := dialect.Build(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sqlbench: build %s: %v\n", name, err)
		os.Exit(1)
	}
	return p
}

// e6Size prints grammar and parser size per dialect (experiment E6): the
// customizability benefit the paper motivates for embedded systems.
func e6Size(int) {
	fmt.Println("E6: product size vs selected features (paper: scaled-down SQL for embedded systems)")
	fmt.Printf("%-10s %9s %6s %12s %13s %8s %9s %10s\n",
		"DIALECT", "FEATURES", "UNITS", "PRODUCTIONS", "ALTERNATIVES", "TOKENS", "KEYWORDS", "GEN-BYTES")
	for _, name := range dialect.Names() {
		p := buildOrDie(name)
		s := p.Stats()
		src, err := codegen.Generate(p.Grammar, p.Tokens, "p")
		genBytes := 0
		if err == nil {
			genBytes = len(src)
		}
		fmt.Printf("%-10s %9d %6d %12d %13d %8d %9d %10d\n",
			name, s.Features, s.Units, s.Productions, s.Grammar.Alternatives,
			s.Tokens, s.Keywords, genBytes)
	}
	fmt.Println("baseline   (monolithic: every keyword always reserved)")
	fmt.Printf("%-10s %9s %6s %12s %13s %8s %9d\n", "baseline", "-", "-", "-", "-", "-",
		len(baseline.MustNew().Keywords()))
}

// e7Composition times the product-line build step per dialect (experiment
// E7): validate + sequence + compose + erase + parser generation.
func e7Composition(int) {
	fmt.Println("E7: parser generation cost vs selected features")
	fmt.Printf("%-10s %9s %14s %14s\n", "DIALECT", "FEATURES", "BUILD-TIME", "PER-PRODUCTION")
	m := sql2003.MustModel()
	for _, name := range dialect.Names() {
		feats, err := dialect.Features(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlbench:", err)
			os.Exit(1)
		}
		cfg := feature.NewConfig(feats...)
		const rounds = 10
		start := time.Now()
		var prods, features int
		for i := 0; i < rounds; i++ {
			p, err := core.Build(m, sql2003.Registry{}, cfg, core.Options{Product: string(name)})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sqlbench:", err)
				os.Exit(1)
			}
			prods = p.Grammar.Len()
			features = p.Config.Len()
		}
		per := time.Since(start) / rounds
		fmt.Printf("%-10s %9d %14s %14s\n", name, features, per, per/time.Duration(max(prods, 1)))
	}
}

// e8Throughput compares parse throughput of composed dialect parsers
// against the monolithic baseline on dialect-appropriate workloads
// (experiment E8).
func e8Throughput(n int) {
	fmt.Println("E8: parse throughput, composed products vs monolithic baseline")
	fmt.Printf("%-11s %-10s %10s %12s %10s\n", "WORKLOAD", "PARSER", "QUERIES/S", "NS/QUERY", "MB/S")

	type row struct {
		workload string
		queries  []string
		name     dialect.Name
	}
	rows := []row{
		{"minimal", workload.Minimal(11, n), dialect.Minimal},
		{"sensor", workload.Sensor(12, n), dialect.TinySQL},
		{"smartcard", workload.SmartCard(13, n), dialect.SCQL},
		{"oltp", workload.OLTP(14, n), dialect.Core},
		{"analytics", workload.Analytics(15, n), dialect.Warehouse},
	}
	base := baseline.MustNew()
	full := buildOrDie(dialect.Full)
	for _, r := range rows {
		p := buildOrDie(r.name)
		report(r.workload, "product", r.queries, func(q string) bool { return p.Accepts(q) })
		report(r.workload, "full-prod", r.queries, func(q string) bool { return full.Accepts(q) })
		report(r.workload, "baseline", r.queries, base.Accepts)
	}
	fmt.Println("(product = scaled-down composed parser; full-prod = every feature composed;")
	fmt.Println(" baseline = conventional hand-written monolith, no extension mechanism)")
}

// measurement is one timed accepts run over a corpus, captured after an
// untimed warmup pass so pooled run state, memo tables, and scratch
// buffers reach steady state before the clock starts. The ns/query
// figure is the best of three timed passes: on small shared runners a
// single pass is dominated by scheduler and GC noise.
type measurement struct {
	queries  int
	accepted int
	nsq      int64 // ns/query, best pass
	qps      float64
	mbs      float64
	allocs   float64 // allocs/query, averaged over the timed passes
	bytes    float64
}

func measure(queries []string, accepts func(string) bool) measurement {
	ok := 0
	for _, q := range queries { // warmup: pool and memo growth off the clock
		if accepts(q) {
			ok++
		}
	}
	if ok == 0 {
		return measurement{queries: len(queries)}
	}
	return measureLoop(len(queries), ok, int(workload.Bytes(queries)), func() {
		for _, q := range queries {
			accepts(q)
		}
	})
}

// measureLoop times loop — one full pass over a corpus of the given query
// count and byte size — after one further untimed warmup pass. It is the
// common core of measure and the E12 streaming measurement, whose unit of
// work is a whole-script scan rather than a per-query call.
func measureLoop(queries, accepted, corpusBytes int, loop func()) measurement {
	loop()
	m := measurement{queries: queries, accepted: accepted}
	const passes = 3
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	best := time.Duration(-1)
	for p := 0; p < passes; p++ {
		start := time.Now()
		loop()
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&after)
	n := float64(queries)
	m.nsq = best.Nanoseconds() / int64(queries)
	m.qps = n / best.Seconds()
	m.mbs = float64(corpusBytes) / (1 << 20) / best.Seconds()
	m.allocs = float64(after.Mallocs-before.Mallocs) / (n * passes)
	m.bytes = float64(after.TotalAlloc-before.TotalAlloc) / (n * passes)
	return m
}

// relDelta relates an E11 generated measurement to the interpreted one
// taken on the same corpus.
type relDelta struct {
	nsPct  float64
	allocs float64
}

// record appends a JSON series row when -json is set.
func record(workloadName, parserName string, m measurement, rel *relDelta) {
	if jsonPath == "" {
		return
	}
	row := benchRow{
		Workload:       workloadName,
		Parser:         parserName,
		Queries:        m.queries,
		Accepted:       m.accepted,
		NsPerQuery:     m.nsq,
		QPS:            m.qps,
		MBPerSec:       m.mbs,
		AllocsPerQuery: m.allocs,
		BytesPerQuery:  m.bytes,
	}
	if rel != nil {
		nsPct, allocs := rel.nsPct, rel.allocs
		row.NsVsInterpretedPct = &nsPct
		row.AllocsVsInterpreted = &allocs
	}
	benchRows = append(benchRows, row)
}

func report(workloadName, parserName string, queries []string, accepts func(string) bool) {
	m := measure(queries, accepts)
	if m.accepted == 0 {
		fmt.Printf("%-11s %-10s %10s (workload not parseable: out-of-dialect)\n",
			workloadName, parserName, "-")
		return
	}
	record(workloadName, parserName, m, nil)
	note := ""
	if m.accepted < m.queries {
		note = fmt.Sprintf("  (!! only %d/%d accepted)", m.accepted, m.queries)
	}
	fmt.Printf("%-11s %-10s %10.0f %12d %10.2f%s\n", workloadName, parserName, m.qps, m.nsq, m.mbs, note)
}

// e9Extension demonstrates language extension by composition (experiment
// E9): the sensor clauses attach to the SELECT base without modifying it,
// and disappear when deselected.
func e9Extension(int) {
	fmt.Println("E9: extension composability (TinySQL acquisitional clauses)")
	withExt := buildOrDie(dialect.TinySQL)

	feats, _ := dialect.Features(dialect.TinySQL)
	cfg := feature.NewConfig(feats...)
	cfg.Deselect("sensor_extensions", "sample_period", "sample_for_duration",
		"sensor_duration_node", "epoch_duration", "lifetime_clause",
		"on_event", "event_arguments", "storage_point")
	withoutExt, err := core.Build(sql2003.MustModel(), sql2003.Registry{}, cfg,
		core.Options{Product: "tinysql-without-sensor"})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlbench:", err)
		os.Exit(1)
	}

	probes := []struct {
		sql  string
		kind string
	}{
		{"SELECT nodeid, light FROM sensors", "base"},
		{"SELECT AVG(temp) FROM sensors GROUP BY roomno", "base"},
		{"SELECT nodeid FROM sensors SAMPLE PERIOD 1024", "extension"},
		{"SELECT nodeid FROM sensors EPOCH DURATION 512", "extension"},
		{"SELECT COUNT(*) FROM sensors LIFETIME 30", "extension"},
	}
	fmt.Printf("%-55s %-10s %8s %8s\n", "QUERY", "KIND", "WITH", "WITHOUT")
	for _, probe := range probes {
		fmt.Printf("%-55s %-10s %8v %8v\n", probe.sql, probe.kind,
			withExt.Accepts(probe.sql), withoutExt.Accepts(probe.sql))
	}
	fmt.Printf("grammar: %d productions with extension, %d without (delta %+d; base unchanged)\n",
		withExt.Grammar.Len(), withoutExt.Grammar.Len(),
		withExt.Grammar.Len()-withoutExt.Grammar.Len())
}

// e11Engines compares the two parse-engine backends head-to-head per
// preset (experiment E11): the interpreted packrat engine versus the
// pregenerated parser the catalog promotes the preset to. Both run the
// same dialect-appropriate corpus through the engine seam's verdict path
// (Check), the serving fast path of sqlserved and sqlparse -batch.
func e11Engines(n int) {
	fmt.Println("E11: engine comparison — interpreted vs generated, per preset")
	fmt.Printf("%-11s %-12s %10s %12s %10s %10s %9s\n",
		"PRESET", "ENGINE", "QUERIES/S", "NS/QUERY", "MB/S", "VS-INTERP", "D-ALLOCS")
	rows := []struct {
		name    dialect.Name
		queries []string
	}{
		{dialect.Minimal, workload.Minimal(21, n)},
		{dialect.TinySQL, workload.Sensor(22, n)},
		{dialect.SCQL, workload.SmartCard(23, n)},
		{dialect.Core, workload.OLTP(24, n)},
		{dialect.Warehouse, workload.Analytics(25, n)},
		{dialect.Full, workload.Analytics(26, n)},
	}
	for _, r := range rows {
		p := buildOrDie(r.name)
		eng, err := dialect.Engine(r.name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqlbench: engine %s: %v\n", r.name, err)
			os.Exit(1)
		}
		interp := engine.Interpreted(p, "")
		mi := measure(r.queries, interp.Accepts)
		record(string(r.name), "interpreted", mi, nil)
		printE11(string(r.name), "interpreted", mi, nil)
		if eng.Info().Kind != engine.KindGenerated {
			fmt.Printf("%-11s %-12s %10s (no generated parser registered for this preset)\n",
				r.name, "generated", "-")
			continue
		}
		mg := measure(r.queries, eng.Accepts)
		rel := &relDelta{
			nsPct:  100 * (float64(mg.nsq) - float64(mi.nsq)) / float64(mi.nsq),
			allocs: mg.allocs - mi.allocs,
		}
		record(string(r.name), "generated", mg, rel)
		printE11(string(r.name), "generated", mg, rel)
	}
	fmt.Println("(generated = pregenerated standalone parser, promoted by catalog fingerprint;")
	fmt.Println(" interpreted = packrat interpreter over the composed grammar;")
	fmt.Println(" VS-INTERP = generated ns/query relative to interpreted, negative is faster)")
}

// printE11 renders one E11 table row, with the relative-delta columns
// filled on generated rows.
func printE11(preset, engineName string, m measurement, rel *relDelta) {
	if m.accepted == 0 {
		fmt.Printf("%-11s %-12s %10s (workload not parseable: out-of-dialect)\n",
			preset, engineName, "-")
		return
	}
	delta, dAllocs := "-", "-"
	if rel != nil {
		delta = fmt.Sprintf("%+.1f%%", rel.nsPct)
		dAllocs = fmt.Sprintf("%+.2f", rel.allocs)
	}
	note := ""
	if m.accepted < m.queries {
		note = fmt.Sprintf("  (!! only %d/%d accepted)", m.accepted, m.queries)
	}
	fmt.Printf("%-11s %-12s %10.0f %12d %10.2f %10s %9s%s\n",
		preset, engineName, m.qps, m.nsq, m.mbs, delta, dAllocs, note)
}

// e12Verdicts measures the verdict serving paths this repo's streaming
// pipeline is built from (experiment E12): a cold engine Check per query
// ("uncached"), the same corpus answered from a warmed hot-statement
// verdict cache ("cached-hit", the steady state of /v1/parse want=verdict
// under repeated traffic), and the streaming scanner driving the cached
// verdict path over the corpus joined into one ';'-separated script
// ("streamed", the /v1/stream inner loop without HTTP).
func e12Verdicts(n int) {
	fmt.Println("E12: verdict serving — cold engine vs cached hit vs streamed script")
	fmt.Printf("%-11s %-12s %12s %12s %9s %9s\n",
		"PRESET", "PATH", "VERDICTS/S", "NS/VERDICT", "SPEEDUP", "ALLOCS/V")
	rows := []struct {
		name    dialect.Name
		queries []string
	}{
		{dialect.Minimal, workload.Minimal(31, n)},
		{dialect.TinySQL, workload.Sensor(32, n)},
		{dialect.SCQL, workload.SmartCard(33, n)},
		{dialect.Core, workload.OLTP(34, n)},
		{dialect.Warehouse, workload.Analytics(35, n)},
		{dialect.Full, workload.Analytics(36, n)},
	}
	for _, r := range rows {
		prod, eng, err := dialect.Resolve(r.name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqlbench: resolve %s: %v\n", r.name, err)
			os.Exit(1)
		}

		cold := measure(r.queries, func(q string) bool { return eng.Check(q) == nil })
		record(string(r.name), "uncached", cold, nil)
		printE12(string(r.name), "uncached", cold, nil)
		if cold.accepted == 0 {
			continue
		}

		// One cache serves both the cached-hit and streamed passes, as one
		// does in the server; measure's warmup pass fills it, the timed
		// passes hit it.
		vc := product.NewVerdictCache(0)
		hit := measure(r.queries, func(q string) bool { return vc.Verdict(eng, q).OK() })
		speedup := float64(cold.nsq) / float64(hit.nsq)
		recordE12(string(r.name), "cached-hit", hit, speedup)
		printE12(string(r.name), "cached-hit", hit, &speedup)

		// The streamed unit of work is one scan of the whole script; the
		// per-statement Texts differ from the bare queries (they keep the
		// ';' and separators), so they warm their own cache entries.
		script := strings.Join(r.queries, ";\n") + ";\n"
		lx := prod.Parser.Lexer()
		streamed := measureLoop(len(r.queries), cold.accepted, len(script), func() {
			sc := stream.NewScanner(lx, strings.NewReader(script), stream.Config{})
			for {
				st, err := sc.Next()
				if err != nil {
					break
				}
				if len(st.Tokens) == 0 && st.Err == nil {
					continue
				}
				vc.Verdict(eng, st.Text)
			}
		})
		sSpeed := float64(cold.nsq) / float64(streamed.nsq)
		recordE12(string(r.name), "streamed", streamed, sSpeed)
		printE12(string(r.name), "streamed", streamed, &sSpeed)
	}
	fmt.Println("(uncached = engine Check per query; cached-hit = warmed verdict cache, the")
	fmt.Println(" /v1/parse want=verdict steady state; streamed = scanner + cached verdicts")
	fmt.Println(" over one ';'-joined script, the /v1/stream inner loop; speedup vs uncached)")
}

// recordE12 is record for the E12 series rows, which relate to the
// preset's uncached pass instead of an interpreted twin.
func recordE12(workloadName, parserName string, m measurement, speedup float64) {
	if jsonPath == "" {
		return
	}
	row := benchRow{
		Workload:          workloadName,
		Parser:            parserName,
		Queries:           m.queries,
		Accepted:          m.accepted,
		NsPerQuery:        m.nsq,
		QPS:               m.qps,
		MBPerSec:          m.mbs,
		AllocsPerQuery:    m.allocs,
		BytesPerQuery:     m.bytes,
		SpeedupVsUncached: &speedup,
	}
	benchRows = append(benchRows, row)
}

// printE12 renders one E12 table row.
func printE12(preset, path string, m measurement, speedup *float64) {
	if m.accepted == 0 {
		fmt.Printf("%-11s %-12s %12s (workload not parseable: out-of-dialect)\n", preset, path, "-")
		return
	}
	sp := "-"
	if speedup != nil {
		sp = fmt.Sprintf("×%.1f", *speedup)
	}
	note := ""
	if m.accepted < m.queries {
		note = fmt.Sprintf("  (!! only %d/%d accepted)", m.accepted, m.queries)
	}
	fmt.Printf("%-11s %-12s %12.0f %12d %9s %9.2f%s\n", preset, path, m.qps, m.nsq, sp, m.allocs, note)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

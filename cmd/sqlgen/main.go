// Command sqlgen emits syntactically valid SQL sentences for any
// product-line dialect or ad-hoc feature selection, using the grammar-driven
// generator in internal/sentence. It is the corpus factory for the fuzz
// targets and the driver for the differential oracle.
//
// Usage:
//
//	sqlgen -product core -n 20 -seed 7            # 20 core-dialect sentences
//	sqlgen -product sql2003 -n 1000 -seed 1       # sql2003 = the full model
//	sqlgen -features query_specification,select_list,... -n 5
//	sqlgen -product tinysql -n 500 -coverage -stats
//	sqlgen -product core -n 2000 -diff            # differential-oracle mode
//	sqlgen -product core -n 200 -diff -sample 8   # oracle over 8 solver-sampled configs
//	sqlgen -product warehouse -n 300 -corpus internal/parser/testdata/fuzz/FuzzParse
//
// Every emitted sentence is verified to parse under the generating product
// (disable with -verify=false). In -diff mode each sentence is additionally
// cross-examined against a feature-superset product and the monolithic
// baseline parser; any disagreement is shrunk and reported with the seed and
// index that reproduce it, and the exit status is 1.
//
// -sample K widens -diff from one subject to K+1: the configuration solver
// (internal/configure) draws K valid feature selections anchored at the
// subject's features (every draw is a superset of the subject, sampled
// count-weighted across the rest of the model), builds each through the
// catalog, and runs the full referee panel against every one. A fixed
// -sample-seed reproduces the exact same configurations, so an oracle
// failure is replayable from the command line it printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sqlspl/internal/baseline"
	"sqlspl/internal/configure"
	"sqlspl/internal/core"
	"sqlspl/internal/dialect"
	"sqlspl/internal/feature"
	"sqlspl/internal/sentence"
)

func main() {
	var (
		productN   = flag.String("product", "core", "preset dialect: minimal|tinysql|scql|core|warehouse|full (sql2003 is an alias for full)")
		features   = flag.String("features", "", "comma-separated feature names; overrides -product")
		n          = flag.Int("n", 100, "number of sentences to generate")
		seed       = flag.Int64("seed", 1, "generator seed; equal seeds reproduce equal corpora")
		depth      = flag.Int("depth", 12, "max nonterminal nesting depth")
		coverage   = flag.Bool("coverage", false, "steer choices toward unexercised grammar alternatives")
		stats      = flag.Bool("stats", false, "print coverage summary to stderr")
		verify     = flag.Bool("verify", true, "require every sentence to parse under the generating product")
		diffMode   = flag.Bool("diff", false, "differential-oracle mode: check sentences against superset and baseline parsers")
		superset   = flag.String("superset", "", "superset preset for -diff (default full; empty disables when product is full)")
		noBase     = flag.Bool("no-baseline", false, "skip the baseline referee in -diff mode")
		corpus     = flag.String("corpus", "", "write sentences as Go fuzz corpus files into this directory instead of stdout")
		sampleK    = flag.Int("sample", 0, "diff mode: also run the oracle over K solver-sampled configurations anchored at the subject's features")
		sampleSeed = flag.Int64("sample-seed", 1, "seed for -sample configuration draws; equal seeds reproduce equal configurations")
		sampleP    = flag.Float64("sample-p", 0.25, "inclusion probability per unforced diagram for -sample draws")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	if *n <= 0 {
		fatal(fmt.Errorf("-n must be positive, got %d", *n))
	}
	if *sampleK > 0 && !*diffMode {
		fatal(fmt.Errorf("-sample only applies in -diff mode"))
	}
	if *sampleK > 0 && *corpus != "" {
		fatal(fmt.Errorf("-sample and -corpus are mutually exclusive: corpus files name one product"))
	}

	prod, err := buildProduct(*productN, *features)
	if err != nil {
		fatal(err)
	}
	subjects := []*core.Product{prod}
	if *sampleK > 0 {
		sampled, err := sampleSubjects(prod, *sampleK, *sampleSeed, *sampleP)
		if err != nil {
			fatal(err)
		}
		subjects = append(subjects, sampled...)
	}

	var base *baseline.Parser
	if *diffMode && !*noBase {
		base, err = baseline.New()
		if err != nil {
			fatal(err)
		}
	}

	if *corpus != "" {
		if err := os.MkdirAll(*corpus, 0o755); err != nil {
			fatal(err)
		}
	}

	disagreements := 0
	for _, subject := range subjects {
		gen, err := sentence.New(subject.Grammar, subject.Tokens, sentence.Options{
			Seed:     *seed,
			MaxDepth: *depth,
			Coverage: *coverage,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %v", subject.Name, err))
		}

		var oracle *sentence.Oracle
		if *diffMode {
			oracle = &sentence.Oracle{Product: subject, Baseline: base}
			if sup := supersetName(*superset, *productN); sup != "" {
				oracle.Superset, err = buildSuperset(sup, subject)
				if err != nil {
					fatal(fmt.Errorf("%s: %v", subject.Name, err))
				}
			}
			if oracle.Superset == nil && oracle.Baseline == nil {
				fatal(fmt.Errorf("-diff with no referees: superset disabled and -no-baseline set"))
			}
		}

		for i := 0; i < *n; i++ {
			s := gen.Sentence()
			if *verify && oracle == nil {
				if _, err := subject.Parse(s); err != nil {
					fatal(fmt.Errorf("sentence %d does not parse under product %s (seed %d):\n  %s\n  %v",
						i, subject.Name, *seed, s, err))
				}
			}
			if oracle != nil {
				for _, r := range oracle.Check(s, *seed, i) {
					fmt.Fprintln(os.Stderr, r)
					disagreements++
				}
			}
			if *corpus != "" {
				if err := writeCorpusFile(*corpus, *seed, i, s); err != nil {
					fatal(err)
				}
			} else {
				fmt.Println(s)
			}
		}

		if *stats {
			fmt.Fprintf(os.Stderr, "sqlgen: product=%s seed=%d n=%d: %s\n",
				subject.Name, *seed, *n, gen.Coverage())
		}
	}

	if *diffMode {
		fmt.Fprintf(os.Stderr, "sqlgen: diff: %d subjects x %d sentences, %d disagreements\n",
			len(subjects), *n, disagreements)
		if disagreements > 0 {
			os.Exit(1)
		}
	}
}

// sampleSubjects draws k valid configurations from the solver, each
// anchored at the subject product's (closed) feature selection, and builds
// every draw through the shared catalog. The draws are seeded: the same
// (sample-seed, k, p) triple rebuilds the same configurations, which keeps
// oracle failures replayable.
func sampleSubjects(sub *core.Product, k int, seed int64, p float64) ([]*core.Product, error) {
	sol := configure.New(dialect.Catalog().Model())
	sa, err := sol.NewSampler(seed, p, sub.Config.Names()...)
	if err != nil {
		return nil, fmt.Errorf("sampler: %w", err)
	}
	out := make([]*core.Product, 0, k)
	for i := 0; i < k; i++ {
		cfg, err := sa.Next()
		if err != nil {
			return nil, fmt.Errorf("sample draw %d: %w", i, err)
		}
		name := fmt.Sprintf("%s+sampled-%d-%d", sub.Name, seed, i)
		prod, err := dialect.Catalog().Get(cfg, core.Options{Product: name, Start: sub.Grammar.Start})
		if err != nil {
			return nil, fmt.Errorf("build sampled config %d (%d features): %w", i, cfg.Len(), err)
		}
		out = append(out, prod)
	}
	return out, nil
}

// buildProduct resolves either an explicit feature list or a preset name
// through the shared catalog. "sql2003" is accepted as an alias for the full
// model, matching the paper's terminology.
func buildProduct(preset, features string) (*core.Product, error) {
	if features != "" {
		var feats []string
		for _, f := range strings.Split(features, ",") {
			if f = strings.TrimSpace(f); f != "" {
				feats = append(feats, f)
			}
		}
		if len(feats) == 0 {
			return nil, fmt.Errorf("-features given but empty")
		}
		return dialect.Catalog().Get(feature.NewConfig(feats...), core.Options{Product: "custom"})
	}
	if preset == "sql2003" {
		preset = string(dialect.Full)
	}
	return dialect.Build(dialect.Name(preset))
}

// supersetName picks the superset preset for -diff: the explicit -superset
// flag, else full — unless the generating product already is full (or the
// alias sql2003), in which case there is no strict superset to compare.
func supersetName(explicit, product string) string {
	if explicit != "" {
		return explicit
	}
	if product == string(dialect.Full) || product == "sql2003" {
		return ""
	}
	return string(dialect.Full)
}

// buildSuperset builds the named preset re-rooted at the subject product's
// start symbol, so both parsers recognize comparable languages.
func buildSuperset(name string, sub *core.Product) (*core.Product, error) {
	feats, err := dialect.Features(dialect.Name(name))
	if err != nil {
		return nil, err
	}
	return dialect.Catalog().Get(feature.NewConfig(feats...), core.Options{
		Product: name + "@" + sub.Grammar.Start,
		Start:   sub.Grammar.Start,
	})
}

// writeCorpusFile emits one sentence in the Go fuzz corpus v1 encoding, named
// by seed and index so re-runs are reproducible and collision-free.
func writeCorpusFile(dir string, seed int64, index int, s string) error {
	name := filepath.Join(dir, fmt.Sprintf("sqlgen-%d-%04d", seed, index))
	body := fmt.Sprintf("go test fuzz v1\nstring(%q)\n", s)
	return os.WriteFile(name, []byte(body), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlgen:", err)
	os.Exit(1)
}

// Command sqlconfig is the feature-model configuration solver at the
// terminal: the same four negotiation modes POST /v1/configure serves
// (internal/configure via internal/server.Configure — CLI and daemon share
// one encode path, so -json output is byte-identical to the wire).
//
// Usage:
//
//	sqlconfig -require query_specification                # complete a partial selection
//	sqlconfig -dialect warehouse -forbid window -mode explain   # why is this infeasible?
//	sqlconfig -mode count                                 # product space per diagram
//	sqlconfig -mode count -diagram set_quantifier -limit 8  # enumerate one diagram
//	sqlconfig -mode sample -dialect minimal -seed 7 -n 3 -build
//
// complete extends the selection (preset features plus -require) to a
// minimal valid configuration, printing what the solver added; explain
// answers feasibility and, for infeasible selections, prints the minimal
// conflict set, the violated model constraints and a suggested relaxation;
// count prints exact product-space counts per feature diagram; sample
// draws seeded, reproducible valid configurations. -build resolves each
// resulting configuration through the shared product catalog into a
// working engine, proving the negotiation round-trips into a parser.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sqlspl/internal/configure"
	"sqlspl/internal/core"
	"sqlspl/internal/feature"
	"sqlspl/internal/product"
	"sqlspl/internal/server"
)

func main() {
	var (
		mode     = flag.String("mode", "complete", "complete|explain|count|sample")
		dialectF = flag.String("dialect", "", "seed the selection with a preset's features (minimal|tinysql|scql|core|warehouse|full)")
		require  = flag.String("require", "", "comma-separated features the configuration must include")
		forbid   = flag.String("forbid", "", "comma-separated features the configuration must not include")
		seed     = flag.Int64("seed", 1, "sample mode: random seed (fixed seed => identical output)")
		n        = flag.Int("n", 1, "sample mode: number of configurations to draw")
		diagramP = flag.Float64("p", 0.25, "sample mode: inclusion probability per unforced diagram")
		diagram  = flag.String("diagram", "", "count mode: enumerate this diagram's configurations")
		limit    = flag.Int("limit", 16, "count mode: enumeration cap")
		jsonOut  = flag.Bool("json", false, "emit the wire-format JSON response")
		build    = flag.Bool("build", false, "build each resulting configuration through the product catalog")
	)
	flag.Parse()

	req := &server.ConfigureRequest{
		Mode:     *mode,
		Dialect:  *dialectF,
		Require:  splitList(*require),
		Forbid:   splitList(*forbid),
		Seed:     *seed,
		N:        *n,
		DiagramP: *diagramP,
		Diagram:  *diagram,
		Limit:    *limit,
	}
	cat := product.Default()
	sol := configure.New(cat.Model())
	resp, _, err := server.Configure(sol, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sqlconfig: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fmt.Fprintf(os.Stderr, "sqlconfig: %v\n", err)
			os.Exit(2)
		}
	} else {
		printHuman(resp)
	}

	if *build {
		if err := buildConfigs(cat, resp); err != nil {
			fmt.Fprintf(os.Stderr, "sqlconfig: %v\n", err)
			os.Exit(1)
		}
	}
	if resp.Conflict != nil {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func printHuman(resp *server.ConfigureResponse) {
	if resp.Conflict != nil {
		c := resp.Conflict
		fmt.Printf("infeasible: conflicting decisions: %s\n", strings.Join(c.Decisions, ", "))
		for _, con := range c.Constraints {
			fmt.Printf("  violates: %s\n", con)
		}
		for _, ch := range c.Chains {
			fmt.Printf("  because: %s\n", ch)
		}
		if c.Relaxation != "" {
			fmt.Printf("  suggestion: %s\n", c.Relaxation)
		}
		return
	}
	switch resp.Mode {
	case server.ModeComplete:
		fmt.Printf("valid configuration with %d features\n", len(resp.Features))
		if len(resp.Added) > 0 {
			fmt.Printf("solver added %d: %s\n", len(resp.Added), strings.Join(resp.Added, ", "))
		} else {
			fmt.Println("selection was already complete")
		}
		fmt.Printf("features: %s\n", strings.Join(resp.Features, ", "))
	case server.ModeExplain:
		fmt.Println("feasible: the selection extends to a valid configuration")
	case server.ModeCount:
		for _, d := range resp.Diagrams {
			exact := "exact"
			if !d.Exact {
				exact = "upper bound"
			}
			fmt.Printf("%-28s %3d features  %s products (%s)\n", d.Diagram, d.Features, d.Products, exact)
			if d.Note != "" {
				fmt.Printf("  note: %s\n", d.Note)
			}
		}
		if resp.Total != "" {
			exact := "exact"
			if !resp.TotalExact {
				exact = "upper bound; cross-diagram constraints unfiltered"
			}
			fmt.Printf("total product space: %s (%s)\n", resp.Total, exact)
		}
		for i, cfg := range resp.Configs {
			fmt.Printf("config %d: %s\n", i+1, strings.Join(cfg, ", "))
		}
		if len(resp.Configs) > 0 && !resp.Complete {
			fmt.Println("(enumeration clipped at the limit)")
		}
	case server.ModeSample:
		for i, cfg := range resp.Configs {
			fmt.Printf("sample %d (%d features): %s\n", i+1, len(cfg), strings.Join(cfg, ", "))
		}
	}
}

// buildConfigs resolves every configuration in the response through the
// catalog, proving each negotiated selection becomes a working engine.
func buildConfigs(cat *product.Catalog, resp *server.ConfigureResponse) error {
	var configs [][]string
	if len(resp.Features) > 0 {
		configs = append(configs, resp.Features)
	}
	configs = append(configs, resp.Configs...)
	if len(configs) == 0 {
		return nil
	}
	for i, names := range configs {
		prod, err := cat.Get(feature.NewConfig(names...), core.Options{Product: fmt.Sprintf("solved-%d", i)})
		if err != nil {
			return fmt.Errorf("build %d: %w", i, err)
		}
		fmt.Printf("built %d: %d features -> %d productions, %d tokens\n",
			i+1, len(names), prod.Grammar.Len(), prod.Tokens.Len())
	}
	return nil
}

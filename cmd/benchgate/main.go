// Command benchgate enforces the benchmark regression gates on a
// BENCH_parse.json series written by sqlbench. Two gates run:
//
// Engine parity (the E11 series): for every workload that carries both
// an interpreted and a generated row, the generated engine's ns/query
// must not exceed the interpreted engine's by more than -max-slowdown.
//
// Verdict cache (the E12 series): every cached-hit row must be at least
// -min-cached-speedup times faster than its uncached twin and allocate
// at most -max-cached-allocs per verdict (the hit path is designed to be
// allocation-free). With -baseline pointing at a committed series, each
// cached-hit row's speedup must also reach (1 - -max-cached-regression)
// of the baseline's speedup for the same workload, so the hot path
// cannot silently rot between commits.
//
//	benchgate -file BENCH_parse.json -baseline BENCH_parse.committed.json
//
// Exit status: 0 when every gate passes, 1 on a regression or when the
// series is missing the rows a gate needs (generated/interpreted pairs,
// cached-hit rows — an unregistered series would otherwise pass
// vacuously), 2 on bad input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type row struct {
	Workload          string   `json:"workload"`
	Parser            string   `json:"parser"`
	NsPerQuery        float64  `json:"ns_per_query"`
	AllocsPerQuery    float64  `json:"allocs_per_query"`
	SpeedupVsUncached *float64 `json:"speedup_vs_uncached"`
}

func loadRows(path string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var series struct {
		Rows []row `json:"rows"`
	}
	if err := json.Unmarshal(data, &series); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return series.Rows, nil
}

func main() {
	file := flag.String("file", "BENCH_parse.json", "benchmark series to check")
	maxSlowdown := flag.Float64("max-slowdown", 0.10,
		"maximum tolerated generated-vs-interpreted slowdown (0.10 = 10%)")
	baseline := flag.String("baseline", "",
		"committed series to compare cached-hit speedups against (optional)")
	minCachedSpeedup := flag.Float64("min-cached-speedup", 5,
		"minimum cached-hit speedup over the uncached verdict path")
	maxCachedAllocs := flag.Float64("max-cached-allocs", 0.05,
		"maximum allocations per cached-hit verdict")
	maxCachedRegression := flag.Float64("max-cached-regression", 0.10,
		"maximum tolerated cached-hit speedup loss vs -baseline (0.10 = 10%)")
	flag.Parse()

	rows, err := loadRows(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var baseSpeedup map[string]float64
	if *baseline != "" {
		baseRows, err := loadRows(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
			os.Exit(2)
		}
		baseSpeedup = map[string]float64{}
		for _, r := range baseRows {
			if r.Parser == "cached-hit" && r.SpeedupVsUncached != nil {
				baseSpeedup[r.Workload] = *r.SpeedupVsUncached
			}
		}
	}

	failed := gateEnginePairs(rows, *maxSlowdown)
	failed = gateCachedHits(rows, baseSpeedup, *minCachedSpeedup, *maxCachedAllocs, *maxCachedRegression) || failed
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: regression exceeds budget")
		os.Exit(1)
	}
}

// gateEnginePairs checks the E11 generated-vs-interpreted parity budget.
// It reports whether the gate failed.
func gateEnginePairs(rows []row, maxSlowdown float64) bool {
	interp := map[string]float64{}
	gen := map[string]float64{}
	var order []string
	for _, r := range rows {
		switch r.Parser {
		case "interpreted":
			if _, seen := interp[r.Workload]; !seen {
				order = append(order, r.Workload)
			}
			interp[r.Workload] = r.NsPerQuery
		case "generated":
			gen[r.Workload] = r.NsPerQuery
		}
	}

	pairs, failed := 0, false
	for _, w := range order {
		g, ok := gen[w]
		if !ok {
			continue
		}
		i := interp[w]
		if i <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s: interpreted ns/query %v unusable\n", w, i)
			os.Exit(2)
		}
		pairs++
		slowdown := g/i - 1
		verdict := "ok"
		if slowdown > maxSlowdown {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%-11s generated %8.0f ns/query vs interpreted %8.0f (%+.1f%%, budget %+.0f%%)  %s\n",
			w, g, i, 100*slowdown, 100*maxSlowdown, verdict)
	}
	if pairs == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no generated/interpreted pairs in series — generated engines missing?")
		return true
	}
	if !failed {
		fmt.Printf("benchgate: %d engine pairs within %.0f%% budget\n", pairs, 100*maxSlowdown)
	}
	return failed
}

// gateCachedHits checks the E12 verdict-cache budget: absolute speedup
// and allocation floors for every cached-hit row, plus a relative floor
// against the committed baseline when one was given. It reports whether
// the gate failed.
func gateCachedHits(rows []row, baseSpeedup map[string]float64, minSpeedup, maxAllocs, maxRegression float64) bool {
	hits, failed := 0, false
	for _, r := range rows {
		if r.Parser != "cached-hit" {
			continue
		}
		hits++
		if r.SpeedupVsUncached == nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: cached-hit row lacks speedup_vs_uncached\n", r.Workload)
			os.Exit(2)
		}
		sp := *r.SpeedupVsUncached
		verdict, why := "ok", ""
		if sp < minSpeedup {
			verdict, why = "FAIL", fmt.Sprintf(" (speedup < ×%.1f floor)", minSpeedup)
		}
		if r.AllocsPerQuery > maxAllocs {
			verdict, why = "FAIL", fmt.Sprintf(" (%.2f allocs/verdict > %.2f budget)", r.AllocsPerQuery, maxAllocs)
		}
		base := ""
		if b, ok := baseSpeedup[r.Workload]; ok {
			base = fmt.Sprintf(", baseline ×%.1f", b)
			if sp < (1-maxRegression)*b {
				verdict, why = "FAIL", fmt.Sprintf(" (lost >%.0f%% of baseline speedup)", 100*maxRegression)
			}
		}
		if verdict == "FAIL" {
			failed = true
		}
		fmt.Printf("%-11s cached-hit ×%.1f vs uncached, %.2f allocs/verdict%s  %s%s\n",
			r.Workload, sp, r.AllocsPerQuery, base, verdict, why)
	}
	if hits == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no cached-hit rows in series — E12 missing from the run?")
		return true
	}
	if !failed {
		fmt.Printf("benchgate: %d cached-hit rows within budget (floor ×%.1f, ≤%.2f allocs)\n", hits, minSpeedup, maxAllocs)
	}
	return failed
}

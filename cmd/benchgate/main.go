// Command benchgate enforces the engine-parity regression gate on a
// BENCH_parse.json series written by sqlbench: for every workload that
// carries both an interpreted and a generated row (the E11 series), the
// generated engine's ns/query must not exceed the interpreted engine's
// by more than -max-slowdown. CI runs it after the benchmark step so the
// specialized-codegen win cannot silently rot.
//
//	benchgate -file BENCH_parse.json -max-slowdown 0.10
//
// Exit status: 0 when every pair is within budget, 1 on a regression or
// when the series contains no generated/interpreted pairs at all (a
// registration failure would otherwise pass vacuously), 2 on bad input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type row struct {
	Workload   string  `json:"workload"`
	Parser     string  `json:"parser"`
	NsPerQuery float64 `json:"ns_per_query"`
}

func main() {
	file := flag.String("file", "BENCH_parse.json", "benchmark series to check")
	maxSlowdown := flag.Float64("max-slowdown", 0.10,
		"maximum tolerated generated-vs-interpreted slowdown (0.10 = 10%)")
	flag.Parse()

	data, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var series struct {
		Rows []row `json:"rows"`
	}
	if err := json.Unmarshal(data, &series); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parse %s: %v\n", *file, err)
		os.Exit(2)
	}

	interp := map[string]float64{}
	gen := map[string]float64{}
	var order []string
	for _, r := range series.Rows {
		switch r.Parser {
		case "interpreted":
			if _, seen := interp[r.Workload]; !seen {
				order = append(order, r.Workload)
			}
			interp[r.Workload] = r.NsPerQuery
		case "generated":
			gen[r.Workload] = r.NsPerQuery
		}
	}

	pairs, failed := 0, false
	for _, w := range order {
		g, ok := gen[w]
		if !ok {
			continue
		}
		i := interp[w]
		if i <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s: interpreted ns/query %v unusable\n", w, i)
			os.Exit(2)
		}
		pairs++
		slowdown := g/i - 1
		verdict := "ok"
		if slowdown > *maxSlowdown {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%-11s generated %8.0f ns/query vs interpreted %8.0f (%+.1f%%, budget %+.0f%%)  %s\n",
			w, g, i, 100*slowdown, 100**maxSlowdown, verdict)
	}
	if pairs == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no generated/interpreted pairs in series — generated engines missing?")
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: generated engine regression exceeds budget")
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d engine pairs within %.0f%% budget\n", pairs, 100**maxSlowdown)
}

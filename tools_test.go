package sqlspl_test

// Smoke tests that build and run every executable and example with the real
// toolchain, so the user-facing entry points cannot rot silently. Skipped
// with -short.

import (
	"os/exec"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles executables; skipped with -short")
	}
	for _, ex := range []string{"quickstart", "sensornet", "smartcard", "extension", "warehouse"} {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			out := runTool(t, "./examples/"+ex)
			if len(out) < 100 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func TestCLIsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles executables; skipped with -short")
	}
	t.Run("sqlinventory", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlinventory")
		for _, want := range []string{"query_specification", "table_expression", "feature diagrams"} {
			if !strings.Contains(out, want) {
				t.Errorf("inventory output missing %q", want)
			}
		}
	})
	t.Run("sqlinventory-diagram", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlinventory", "-diagram", "table_expression")
		for _, want := range []string{"from", "where", "optional"} {
			if !strings.Contains(out, want) {
				t.Errorf("diagram output missing %q", want)
			}
		}
	})
	t.Run("sqlfpc-stats", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlfpc", "-dialect", "tinysql", "-stats")
		if !strings.Contains(out, "productions") || !strings.Contains(out, "keywords") {
			t.Errorf("stats output wrong:\n%s", out)
		}
	})
	t.Run("sqlfpc-grammar", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlfpc", "-dialect", "minimal", "-grammar")
		if !strings.Contains(out, "query_specification") || !strings.Contains(out, "where_clause") {
			t.Errorf("grammar output wrong:\n%s", out)
		}
	})
	t.Run("sqlfpc-check", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlfpc", "-dialect", "minimal", "-check", "SELECT a FROM t")
		if !strings.Contains(out, "ACCEPT") {
			t.Errorf("check output wrong:\n%s", out)
		}
	})
	t.Run("sqlfpc-conflicts", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlfpc", "-dialect", "minimal", "-conflicts")
		if !strings.Contains(out, "backtracking") {
			t.Errorf("conflicts output wrong:\n%s", out)
		}
	})
	t.Run("sqlparse", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlparse", "-dialect", "warehouse",
			"SELECT a FROM t UNION SELECT b FROM u")
		if !strings.Contains(out, "*ast.Select") {
			t.Errorf("sqlparse output wrong:\n%s", out)
		}
	})
	t.Run("sqlfpc-interactive", func(t *testing.T) {
		t.Parallel()
		cmd := exec.Command("go", "run", "./cmd/sqlfpc", "-interactive")
		cmd.Stdin = strings.NewReader(
			"dialect minimal\ncheck SELECT a, b FROM t\nselect multiple_columns\ncheck SELECT a, b FROM t\nquit\n")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("interactive session failed: %v\n%s", err, out)
		}
		text := string(out)
		if !strings.Contains(text, "REJECT") || !strings.Contains(text, "ACCEPT") {
			t.Errorf("interactive output missing verdicts:\n%s", text)
		}
		if strings.Index(text, "REJECT") > strings.Index(text, "ACCEPT (6 tokens)") {
			t.Errorf("selecting multiple_columns did not change the verdict:\n%s", text)
		}
	})
	t.Run("sqldiff", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqldiff", "-a", "minimal", "-b", "tinysql",
			"-probe", "SELECT nodeid FROM sensors SAMPLE PERIOD 1024")
		if !strings.Contains(out, "keywords only in B") || !strings.Contains(out, "SAMPLE") {
			t.Errorf("sqldiff output wrong:\n%s", out)
		}
	})
	t.Run("sqlbench-e9", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlbench", "-exp", "E9", "-n", "10")
		if !strings.Contains(out, "extension") || !strings.Contains(out, "true") {
			t.Errorf("sqlbench output wrong:\n%s", out)
		}
	})
	t.Run("sqlbench-bad-exp", func(t *testing.T) {
		t.Parallel()
		cmd := exec.Command("go", "run", "./cmd/sqlbench", "-exp", "E42")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("unknown experiment accepted:\n%s", out)
		}
		if !strings.Contains(string(out), "E6, E7, E8, E9") {
			t.Errorf("error does not list valid experiments:\n%s", out)
		}
	})
	t.Run("sqlparse-batch", func(t *testing.T) {
		t.Parallel()
		// A batch with a failing statement exits nonzero and reports the
		// error on stderr; the ordered verdicts stay on stdout. Stdin is
		// framed at top-level ';' (a statement may span lines), not by line.
		cmd := exec.Command("go", "run", "./cmd/sqlparse",
			"-dialect", "core", "-batch", "-workers", "4")
		cmd.Stdin = strings.NewReader(
			"SELECT a FROM t;\nSELECT b\nFROM u WHERE c = 1;\nSELECT nope FROM;\n")
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		if err == nil {
			t.Fatalf("batch with a rejected line exited zero:\n%s", stdout.String())
		}
		if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
			t.Fatalf("batch exit = %v, want exit status 1\nstderr: %s", err, stderr.String())
		}
		for _, want := range []string{"1: ACCEPT", "2: ACCEPT", "3: REJECT", "2 accepted, 1 rejected"} {
			if !strings.Contains(stdout.String(), want) {
				t.Errorf("batch stdout missing %q:\n%s", want, stdout.String())
			}
		}
		if !strings.Contains(stderr.String(), "line 4:") {
			t.Errorf("batch stderr missing per-statement error line:\n%s", stderr.String())
		}
	})
	t.Run("sqlparse-batch-all-ok", func(t *testing.T) {
		t.Parallel()
		cmd := exec.Command("go", "run", "./cmd/sqlparse",
			"-dialect", "core", "-batch", "-workers", "2")
		cmd.Stdin = strings.NewReader("SELECT a FROM t;\nSELECT b FROM u;\n")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("clean batch exited nonzero: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "2 accepted, 0 rejected") {
			t.Errorf("batch output wrong:\n%s", out)
		}
	})
	t.Run("sqlserved-loadgen", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlserved", "-loadgen", "-n", "300",
			"-loadgen-dialects", "minimal,tinysql,core", "-concurrency", "8")
		for _, want := range []string{"zero errors", "telemetry consistent", "TOTAL"} {
			if !strings.Contains(out, want) {
				t.Errorf("loadgen output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("sqlparse-json", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, "./cmd/sqlparse", "-dialect", "core", "-json",
			"SELECT a FROM t WHERE b = 1")
		for _, want := range []string{`"ok": true`, `"type": "select"`, `"sql": "SELECT a FROM t WHERE b = 1"`} {
			if !strings.Contains(out, want) {
				t.Errorf("json output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("sqlparse-json-diagnostic", func(t *testing.T) {
		t.Parallel()
		cmd := exec.Command("go", "run", "./cmd/sqlparse", "-dialect", "minimal", "-json",
			"SELECT a, b FROM t")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("rejected query exited zero:\n%s", out)
		}
		for _, want := range []string{`"ok": false`, `"expected"`, `"line": 1`} {
			if !strings.Contains(string(out), want) {
				t.Errorf("json diagnostic missing %q:\n%s", want, out)
			}
		}
	})
}

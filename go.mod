module sqlspl

go 1.22

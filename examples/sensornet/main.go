// Sensornet: a TinySQL-style dialect for sensor networks, the paper's
// leading scaled-down-SQL scenario ("Query processing for sensor networks
// requires different semantics of queries as well as additional features
// than provided in SQL standards", citing TinyDB).
//
// The dialect composes a restricted Foundation core (no aliases, no joins,
// no ORDER BY) with the acquisitional extension features: SAMPLE PERIOD,
// EPOCH DURATION, LIFETIME, ON EVENT and CREATE STORAGE POINT. The typed
// AST surfaces the acquisitional parameters so a query processor can plan
// sampling — the analog of TinyDB's epoch-based execution.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"sqlspl/internal/ast"
	"sqlspl/internal/dialect"

	// Link the pregenerated preset parsers so the catalog promotes the
	// dialect to its generated engine.
	_ "sqlspl/internal/engine/generated"
)

func main() {
	product, err := dialect.Build(dialect.TinySQL)
	if err != nil {
		log.Fatal(err)
	}
	// Parsing goes through the engine seam: the preset's fingerprint
	// matches a pregenerated parser, so this resolves the generated
	// backend (the product above still carries the composition artifacts).
	eng, err := dialect.Engine(dialect.TinySQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tinysql product: %d productions, %d reserved words: %v\n",
		product.Grammar.Len(), len(product.Tokens.Keywords()), product.Tokens.Keywords())
	fmt.Printf("serving engine: %s\n\n", eng.Info().Kind)

	queries := []string{
		// Canonical TinyDB queries from the literature.
		"SELECT nodeid, light, temp FROM sensors SAMPLE PERIOD 1024",
		"SELECT AVG(light) FROM sensors WHERE temp > 25 GROUP BY roomno SAMPLE PERIOD 2048 FOR 30",
		"SELECT COUNT(*) FROM sensors EPOCH DURATION 512",
		"SELECT nodeid FROM sensors LIFETIME 30",
		"ON EVENT bird_detect(loc): SELECT AVG(light) FROM sensors SAMPLE PERIOD 1024",
		"CREATE STORAGE POINT recent_light SIZE 8 AS SELECT nodeid, light FROM sensors",
	}
	builder := ast.NewBuilder(nil)
	for _, q := range queries {
		tree, err := eng.Parse(q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		script, err := builder.Build(tree)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		fmt.Printf("query: %s\n", q)
		if sel, ok := script.Statements[0].(*ast.Select); ok && sel.Sensor != nil {
			fmt.Printf("  acquisition: %s\n", sel.Sensor.SQL())
		} else {
			fmt.Printf("  statement kind: %T\n", script.Statements[0])
		}
	}

	// TinySQL's documented restrictions hold: these are all syntax errors
	// in the composed dialect even though they are fine in full SQL.
	fmt.Println("\nout-of-dialect (TinySQL restrictions):")
	for _, q := range []string{
		"SELECT nodeid AS n FROM sensors",                     // no column aliases
		"SELECT s.light FROM sensors s JOIN rooms r ON a = b", // no joins
		"SELECT light FROM sensors ORDER BY light",            // no ORDER BY
	} {
		if eng.Accepts(q) {
			log.Fatalf("dialect unexpectedly accepts %q", q)
		}
		fmt.Printf("  reject: %s\n", q)
	}

	// The word ORDER is not reserved here, so sensor fields may use it.
	if !eng.Accepts("SELECT order FROM sensors SAMPLE PERIOD 1024") {
		log.Fatal("unselected keyword should be usable as a field name")
	}
	fmt.Println("\nnote: ORDER is not reserved in this dialect — `SELECT order FROM sensors` parses.")
}

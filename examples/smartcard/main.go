// Smartcard: an SCQL-style profile (ISO 7816-7 Structured Card Query
// Language), the paper's second embedded scenario: "A standard called
// Structured Card Query Language (SCQL) by ISO considers interindustry
// commands for use in smart cards with restricted functionality of SQL."
//
// Cards have kilobytes of RAM; the profile keeps basic table DDL, searched
// and cursor-positioned DML, single-table SELECT, and table-level grants,
// and drops everything else. The example runs a small card session and
// reports the footprint numbers an embedded integrator would check.
//
// Run with: go run ./examples/smartcard
package main

import (
	"fmt"
	"log"

	"sqlspl/internal/ast"
	"sqlspl/internal/dialect"

	// Link the pregenerated preset parsers so the catalog promotes the
	// profile to its generated engine.
	_ "sqlspl/internal/engine/generated"
)

func main() {
	product, err := dialect.Build(dialect.SCQL)
	if err != nil {
		log.Fatal(err)
	}
	full, err := dialect.Build(dialect.Full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scql profile: %d productions, %d keywords (full SQL product: %d productions, %d keywords)\n\n",
		product.Grammar.Len(), len(product.Tokens.Keywords()),
		full.Grammar.Len(), len(full.Tokens.Keywords()))

	// Parse through the engine seam — on a card-sized profile the
	// pregenerated standalone parser is the whole point: no composition
	// machinery ships, just the parser for exactly these features.
	eng, err := dialect.Engine(dialect.SCQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving engine: %s\n\n", eng.Info().Kind)

	session := []string{
		"CREATE TABLE purses ( id INTEGER, holder VARCHAR(20), balance INTEGER )",
		"INSERT INTO purses (id, holder, balance) VALUES (1, 'alice', 500)",
		"INSERT INTO purses (id, holder, balance) VALUES (2, 'bob', 120)",
		"GRANT SELECT, UPDATE ON purses TO PUBLIC",
		"DECLARE pay CURSOR FOR SELECT balance FROM purses WHERE id = 1",
		"OPEN pay",
		"FETCH pay INTO :balance",
		"UPDATE purses SET balance = 450 WHERE CURRENT OF pay",
		"CLOSE pay",
		"DELETE FROM purses WHERE balance = 0",
	}
	builder := ast.NewBuilder(nil)
	for _, stmt := range session {
		tree, err := eng.Parse(stmt)
		if err != nil {
			log.Fatalf("%q: %v", stmt, err)
		}
		script, err := builder.Build(tree)
		if err != nil {
			log.Fatalf("%q: %v", stmt, err)
		}
		fmt.Printf("ok  %-70s -> %T\n", stmt, script.Statements[0])
	}

	fmt.Println("\nnot in the card profile (parse errors by construction):")
	for _, stmt := range []string{
		"CREATE VIEW v AS SELECT id FROM purses",
		"SELECT holder FROM purses UNION SELECT holder FROM archive",
		"SELECT RANK() OVER (ORDER BY balance) FROM purses",
		"CREATE TABLE blobs ( b BLOB )",
	} {
		if eng.Accepts(stmt) {
			log.Fatalf("profile unexpectedly accepts %q", stmt)
		}
		fmt.Printf("reject  %s\n", stmt)
	}
}

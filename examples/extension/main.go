// Extension: adding brand-new syntax to the product line without touching
// any base grammar — the language-extension use case the paper inherits
// from Bali ("language and extension grammars") and contrasts with
// MetaBorg in Related Work.
//
// We invent a vendor extension, the MySQL-style LIMIT clause, as a fresh
// feature: one sub-grammar, one token file, one feature diagram appended to
// the SQL:2003 model. Composition does the rest — the same mechanism that
// built TinySQL's sensor clauses works for user-supplied features.
//
// Run with: go run ./examples/extension
package main

import (
	"fmt"
	"log"

	"sqlspl/internal/compose"
	"sqlspl/internal/core"
	"sqlspl/internal/dialect"
	"sqlspl/internal/feature"
	"sqlspl/internal/grammar"
	"sqlspl/internal/product"
	"sqlspl/internal/sql2003"
)

// limitGrammar extends the query_statement base production with an optional
// limit clause. Composition replaces the base production because the new
// right-hand side contains it (the paper's replace rule).
const limitGrammar = `
grammar limit_clause ;
query_statement : query_expression ( order_by_clause )? ( limit_clause )? ;
limit_clause : LIMIT UNSIGNED_INTEGER ( OFFSET UNSIGNED_INTEGER )? ;
`

const limitTokens = `
tokens limit_clause ;
LIMIT : 'LIMIT' ;
OFFSET : 'OFFSET' ;
UNSIGNED_INTEGER : <integer> ;
`

// extendedSource resolves the new unit and defers everything else to the
// SQL:2003 registry.
type extendedSource struct {
	reg   sql2003.Registry
	extra map[string]compose.Unit
}

func (s extendedSource) Unit(name string) (compose.Unit, error) {
	if u, ok := s.extra[name]; ok {
		out := compose.Unit{Name: u.Name}
		if u.Grammar != nil {
			out.Grammar = u.Grammar.Clone()
		}
		if u.Tokens != nil {
			out.Tokens = u.Tokens.Clone()
		}
		return out, nil
	}
	return s.reg.Unit(name)
}

func main() {
	base := sql2003.MustModel()

	// A new one-feature diagram, appended to the Foundation model. The
	// limit feature requires the query-statement glue it extends.
	limitDiagram := feature.NewDiagram("vendor_extensions", "Vendor syntax extensions (example).",
		feature.New("limit_clause").
			Describe("MySQL-style LIMIT n [OFFSET m]").
			Provide("limit_clause"),
	)
	model, err := feature.NewModel("sql2003+vendor",
		append(append([]*feature.Diagram{}, base.Diagrams...), limitDiagram),
		append(append([]feature.Constraint{}, base.Constraints...),
			feature.Constraint{Kind: feature.Requires, A: "limit_clause", B: "query_statement_f"}),
	)
	if err != nil {
		log.Fatal(err)
	}

	src := extendedSource{extra: map[string]compose.Unit{
		"limit_clause": {
			Name:    "limit_clause",
			Grammar: grammar.MustParseGrammar(limitGrammar),
			Tokens:  grammar.MustParseTokens(limitTokens),
		},
	}}

	// Extended models get their own catalog: the default catalog serves the
	// stock SQL:2003 product line, this one serves sql2003+vendor. A real
	// deployment would hold one catalog per (model, unit source) pair and
	// let every tenant's selection build once.
	cat := product.NewCatalog(model, src)

	// Core dialect + the new feature.
	feats, err := dialect.Features(dialect.Core)
	if err != nil {
		log.Fatal(err)
	}
	selection := feature.NewConfig(append(feats, "limit_clause")...)
	extended, err := cat.Get(selection, core.Options{Product: "core+limit"})
	if err != nil {
		log.Fatal(err)
	}

	// An extended selection has no pregenerated parser, so the engine seam
	// resolves the interpreted backend — extensions work the moment they
	// compose, no regeneration step required.
	eng, err := cat.Engine(selection, core.Options{Product: "core+limit"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("core+limit: %d productions (LIMIT composed onto query_statement without editing it), engine: %s\n\n",
		extended.Grammar.Len(), eng.Info().Kind)
	fmt.Println(grammar.FormatProduction(extended.Grammar.Production("query_statement")))
	fmt.Println(grammar.FormatProduction(extended.Grammar.Production("limit_clause")))

	for _, q := range []string{
		"SELECT a FROM t ORDER BY a LIMIT 10",
		"SELECT a FROM t LIMIT 10 OFFSET 20",
		"SELECT a FROM t",
	} {
		if !eng.Accepts(q) {
			log.Fatalf("extended product rejected %q", q)
		}
		fmt.Printf("ACCEPT  %s\n", q)
	}

	// The unextended core product still rejects LIMIT — the extension lives
	// only in products that select the feature. (dialect.Build resolves
	// through the default catalog, so this is cached too.)
	plain, err := dialect.Build(dialect.Core)
	if err != nil {
		log.Fatal(err)
	}
	if plain.Accepts("SELECT a FROM t LIMIT 10") {
		log.Fatal("plain core unexpectedly accepts LIMIT")
	}
	fmt.Println("\nplain core still rejects LIMIT; and `SELECT limit FROM t` parses there,")
	fmt.Println("because LIMIT is only reserved where the feature is selected:")
	fmt.Printf("  plain core:  %v\n", plain.Accepts("SELECT limit FROM t"))
	fmt.Printf("  core+limit:  %v\n", eng.Accepts("SELECT limit FROM t"))
}

// Warehouse: the data-warehousing product of the line — the paper's
// business-intelligence motivation ("business intelligence and data
// warehousing functions" among SQL:2003's growth areas).
//
// The dialect composes ROLLUP/CUBE/GROUPING SETS, window functions with
// frames, set operations, recursive WITH, and the statistical aggregates on
// top of the core. The example parses analytical queries into the typed
// AST, inspects their structure, and re-renders them.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"sqlspl/internal/ast"
	"sqlspl/internal/dialect"

	// Link the pregenerated preset parsers so the catalog promotes the
	// dialect to its generated engine.
	_ "sqlspl/internal/engine/generated"
)

func main() {
	product, err := dialect.Build(dialect.Warehouse)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dialect.Engine(dialect.Warehouse)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warehouse product: %d productions, %d keywords (engine: %s)\n\n",
		product.Grammar.Len(), len(product.Tokens.Keywords()), eng.Info().Kind)

	queries := []string{
		"SELECT region, product, SUM(amount) FROM sales GROUP BY ROLLUP (region, product)",
		"SELECT region, SUM(amount) FROM sales GROUP BY GROUPING SETS ((region), (region, product), ())",
		"SELECT region, RANK() OVER (PARTITION BY region ORDER BY amount DESC) FROM sales",
		"SELECT SUM(amount) OVER (ORDER BY day_col ROWS BETWEEN 6 PRECEDING AND CURRENT ROW) FROM sales",
		"WITH RECURSIVE mgr_chain (mgr) AS (SELECT mgr FROM emp) SELECT mgr FROM mgr_chain",
		"SELECT region FROM sales_2007 UNION ALL SELECT region FROM sales_2008 EXCEPT SELECT region FROM excluded",
		"SELECT STDDEV_POP(amount) FILTER (WHERE region = 'EU') FROM sales",
		"MERGE INTO inventory USING shipment ON inventory.sku = shipment.sku WHEN MATCHED THEN UPDATE SET qty = 1 WHEN NOT MATCHED THEN INSERT (sku) VALUES (1)",
	}
	builder := ast.NewBuilder(nil)
	for _, q := range queries {
		tree, err := eng.Parse(q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		script, err := builder.Build(tree)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		fmt.Printf("query:    %s\n", q)
		if sel, ok := script.Statements[0].(*ast.Select); ok {
			describe(sel)
		}
		fmt.Printf("rendered: %s\n\n", script.SQL())
	}
}

func describe(sel *ast.Select) {
	var notes []string
	for _, g := range sel.GroupBy {
		if g.Kind != "" {
			notes = append(notes, "grouping:"+g.Kind)
		}
	}
	for _, item := range sel.Items {
		if fc, ok := item.Expr.(*ast.FuncCall); ok {
			if fc.OverSpec != nil || fc.OverName != "" {
				notes = append(notes, "window-function:"+fc.Name[0])
			}
			if fc.Filter != nil {
				notes = append(notes, "filtered-aggregate:"+fc.Name[0])
			}
		}
	}
	for _, op := range sel.SetOps {
		notes = append(notes, "set-op:"+op.Op)
	}
	if len(sel.With) > 0 {
		notes = append(notes, fmt.Sprintf("ctes:%d recursive:%v", len(sel.With), sel.Recursive))
	}
	if len(notes) > 0 {
		fmt.Printf("analysis: %v\n", notes)
	}
}

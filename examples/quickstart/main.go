// Quickstart: the paper's Section 3.2 worked example, end to end.
//
// We select the features of the instance description
//
//	{Query Specification, Select List, Select Sublist, Table Expression}
//	with {Table Expression, From, Table Reference}
//	plus the optional Set Quantifier and Where features,
//
// compose their sub-grammars and token files, generate a parser, and show
// that it parses precisely that dialect: single-column, single-table SELECT
// with optional DISTINCT/ALL and optional WHERE.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sqlspl/internal/core"
	"sqlspl/internal/feature"
	"sqlspl/internal/grammar"
	"sqlspl/internal/product"
)

func main() {
	// Step 1 (paper): "A feature tree of the SELECT statement presents
	// various features of the statement to the user. Selection of different
	// subfeatures ... is equivalent to creating a feature instance
	// description."
	selection := feature.NewConfig(
		// Figure 1: Query Specification with Select List -> Select Sublist.
		"query_specification", "select_list", "select_columns", "derived_column",
		// The optional Set Quantifier feature (DISTINCT | ALL).
		"set_quantifier", "quantifier_all", "quantifier_distinct",
		// Figure 2: Table Expression with mandatory From, optional Where.
		"table_expression", "from", "where",
		// What a WHERE condition needs: conditions, one comparison operator,
		// value expressions, identifiers, and literals.
		"search_condition", "predicate", "comparison", "op_equals",
		"value_expression", "identifier_chain",
		"literal", "numeric_literal", "string_literal",
	)

	// Steps 2-3 (paper): compose the sub-grammars and token files of the
	// selected features, then create the parser for the composed grammar.
	// We go through the product catalog — the serving-layer entry point —
	// so an identical selection anywhere in the process reuses this build.
	cat := product.Default()
	worked, err := cat.Get(selection, core.Options{Product: "worked-example"})
	if err != nil {
		log.Fatal(err)
	}

	// Asking again is a catalog hit: same *core.Product, no recomposition.
	again, err := cat.Get(selection, core.Options{Product: "worked-example"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d entries, warm lookup returned the same product: %v\n",
		cat.Len(), worked == again)

	// The serving surface parses through the engine seam rather than the
	// product directly. An ad-hoc selection like this one has no
	// pregenerated parser, so the catalog resolves the interpreted engine;
	// the preset dialects promote to generated backends (see the other
	// examples).
	eng, err := cat.Engine(selection, core.Options{Product: "worked-example"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %s/%s\n", eng.Info().Product, eng.Info().Kind)

	fmt.Printf("composed %d features -> %d sub-grammars -> %d productions, %d reserved words\n\n",
		worked.Config.Len(), len(worked.Units), worked.Grammar.Len(),
		len(worked.Tokens.Keywords()))

	fmt.Println("== composed grammar ==")
	fmt.Println(grammar.Format(worked.Grammar))

	fmt.Println("== the product parses precisely the selected features ==")
	queries := []string{
		"SELECT a FROM t",
		"SELECT DISTINCT a FROM t",
		"SELECT a FROM t WHERE b = 1",
		"SELECT DISTINCT a FROM t WHERE b = 'x'",
		"SELECT a, b FROM t",          // multiple columns: not selected
		"SELECT * FROM t",             // asterisk: not selected
		"SELECT a FROM t ORDER BY a",  // ORDER BY: not selected
		"SELECT a FROM t WHERE b < 1", // only = was selected
	}
	for _, q := range queries {
		verdict := "ACCEPT"
		if !eng.Accepts(q) {
			verdict = "reject"
		}
		fmt.Printf("  %-42s %s\n", q, verdict)
	}

	fmt.Println("\n== parse tree for the headline query ==")
	tree, err := eng.Parse("SELECT DISTINCT a FROM t WHERE b = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree.Dump())
}
